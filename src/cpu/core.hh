/**
 * @file
 * The SPARC64 V out-of-order core model: 4-wide issue into a 64-entry
 * instruction window, four kinds of reservation stations, speculative
 * dispatch with data forwarding and cancel/replay (§3.1), dual
 * non-blocking operand access (§3.2), and 4-wide in-order commit.
 */

#ifndef S64V_CPU_CORE_HH
#define S64V_CPU_CORE_HH

#include <array>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/branch_pred.hh"
#include "cpu/core_params.hh"
#include "cpu/exec.hh"
#include "cpu/fetch.hh"
#include "cpu/lsq.hh"
#include "cpu/pipeview.hh"
#include "cpu/rename.hh"
#include "cpu/rob.hh"
#include "cpu/rs.hh"
#include "mem/hierarchy.hh"
#include "obs/cpi_stack.hh"
#include "sim/clocked.hh"
#include "trace/trace.hh"

namespace s64v
{

/** Identifiers for the reservation stations. */
enum RsId : std::uint8_t
{
    kRsA = 0,  ///< address generation (10 entries, 2 dispatch).
    kRsBr = 1, ///< branches (10 entries, 1 dispatch).
    kRsE0 = 2, ///< integer station 0.
    kRsE1 = 3, ///< integer station 1 (absent in 1RS mode).
    kRsF0 = 4, ///< FP station 0.
    kRsF1 = 5, ///< FP station 1 (absent in 1RS mode).
    kNumRs = 6
};

/** A recently retired instruction (crash-report breadcrumbs). */
struct RecentCommit
{
    std::uint64_t seq = 0;
    Addr pc = 0;
    Cycle cycle = 0;
};

/** One processor core; a Clocked component of the cycle kernel. */
class Core : public Clocked
{
  public:
    Core(const CoreParams &params, CpuId cpu, MemSystem &mem,
         stats::Group *parent);

    /** Attach the trace this core replays. */
    void setTrace(TraceSource *source);

    /**
     * Attach a pipeline recorder; committed instructions' stage
     * timestamps are pushed into it. Pass nullptr to detach.
     */
    void attachPipeview(PipeviewRecorder *recorder)
    {
        pipeview_ = recorder;
    }

    /** Advance the core by one cycle. */
    void tick(Cycle cycle) override;

    /** @return true when the trace is fully executed and drained. */
    bool done() const override;

    /**
     * Earliest cycle >= @p now at which this core could commit,
     * complete, dispatch, issue, fetch, or change a stall
     * classification — the skip-ahead kernel's quiescence contract
     * (see Clocked::nextWorkCycle). Conservative: returns @p now
     * whenever any stage could act, including speculative-dispatch
     * churn before a miss-cancel broadcast.
     */
    Cycle nextWorkCycle(Cycle now) const override;

    /**
     * Bulk-replay the per-cycle stat mutations of @p cycles elided
     * idle ticks starting at @p from: occupancy samples, commit-idle
     * and CPI-stack stall slots, and the issue-stage stall counter
     * the frozen front-of-queue instruction would have hit.
     */
    void elide(Cycle from, std::uint64_t cycles) override;

    /** Component class for the simulator self-profiler. */
    const char *profileClass() const override { return "core"; }

    /**
     * Monotone activity stamp for the kernel's quiescence
     * memoization (see CycleKernel::setMemoQuiescence): the sum of
     * the per-unit activity counters, bumped by every state
     * transition a tick makes. An unchanged stamp across ticks
     * proves the pipeline state is frozen, so a cached
     * nextWorkCycle() answer is still a valid lower bound.
     */
    std::uint64_t activityStamp() const override
    {
        return activity_ + lsq_->activity() + fetch_->activity();
    }

    std::uint64_t committed() const { return committed_.value(); }
    Cycle lastCommitCycle() const { return lastCommitCycle_; }

    /** Component access for experiments and tests. @{ */
    BranchPredictor &bpred() { return *bpred_; }
    FetchUnit &fetchUnit() { return *fetch_; }
    LoadStoreQueue &lsq() { return *lsq_; }
    /** Commit-slot cycle accounting (see obs/cpi_stack.hh). */
    const obs::CpiStack &cpiStack() const { return cpiStack_; }
    const CoreParams &params() const { return params_; }
    std::uint64_t replays() const { return replays_.value(); }
    std::uint64_t windowFullStalls() const
    {
        return windowFullStalls_.value();
    }
    /** @} */

    /** Self-check and crash-report access. @{ */
    std::size_t windowSize() const { return window_.size(); }
    std::size_t windowCapacity() const
    {
        return window_.capacity();
    }
    const ReservationStation *station(unsigned i) const
    {
        return i < rs_.size() ? rs_[i].get() : nullptr;
    }
    const RenameUnit &renameUnit() const { return *rename_; }
    const LoadStoreQueue &lsq() const { return *lsq_; }
    std::size_t pendingStoreCount() const
    {
        return pendingStores_.size();
    }
    /**
     * Plain counters mirroring issue/commit, never cleared by the
     * warmup stats reset — the invariant auditor's conservation
     * checks (issued == committed + in-window) depend on them
     * spanning the whole run.
     */
    std::uint64_t rawIssued() const { return rawIssued_; }
    std::uint64_t rawCommitted() const { return rawCommitted_; }
    /** Last retired instructions, oldest first. */
    std::vector<RecentCommit> recentCommits() const;
    /** @} */

    /**
     * Fault injection (--inject-fault=stall:<cycle>): from @p cycle
     * on, the commit stage retires nothing, so the whole window backs
     * up — the watchdog must detect and diagnose this.
     */
    void injectCommitStall(Cycle cycle) { commitStallAt_ = cycle; }

    /**
     * Serialize the complete microarchitectural state of this core:
     * window, stations, execute pipelines, LSQ, fetch pipeline, BHT,
     * rename pools, scoreboard and commit bookkeeping. Stats travel
     * with the stats tree; the injected-fault configuration is
     * re-armed by construction, not restored.
     */
    void saveState(ckpt::SnapshotWriter &w) const;
    void restoreState(ckpt::SnapshotReader &r);

  private:
    /**
     * Predicted consumer-usable cycle of @p prod_seq's result as the
     * reservation stations see it at cycle @p now (before a load's
     * miss-cancel broadcast they still believe the hit schedule).
     */
    Cycle predReadyOf(std::uint64_t prod_seq, Cycle now) const;
    /** Confirmed consumer-usable cycle (kCycleNever if unknown). */
    Cycle actualReadyOf(std::uint64_t prod_seq) const;

    bool sourcesDispatchable(const WindowEntry &e, Cycle now,
                             Cycle exec_start) const;
    bool sourcesValid(const WindowEntry &e, Cycle exec_start) const;

    /**
     * The single dominant reason no instruction can retire at
     * @p cycle, charged to every unused commit slot. Priority within
     * a blocked head follows the §4.2 differential ladder (L2 miss,
     * TLB, L1D), then serialization, then structural backpressure.
     */
    obs::CommitSlot classifyCommitStall(Cycle cycle) const;

    void commitStage(Cycle cycle);
    void loadCompletionStage(Cycle cycle);
    void pendingStoreStage(Cycle cycle);
    void executeStage(Cycle cycle);
    void dispatchStage(Cycle cycle);
    void issueStage(Cycle cycle);

    /**
     * What blocks the front of the fetch queue from issuing — a
     * side-effect-free mirror of issueStage()'s gate sequence (it
     * must not advance the station-deal toggles), used by the
     * skip-ahead path to classify and bulk-replay issue stalls.
     */
    enum class IssueBlock : std::uint8_t
    {
        None,        ///< the front instruction can issue.
        FetchEmpty,  ///< nothing fetched.
        WindowFull,
        Serialize,   ///< precise special-instruction drain.
        Rename,
        LqFull,
        SqFull,
        StationFull, ///< every candidate reservation station full.
    };
    IssueBlock issueBlock() const;

    /** Replay @p cycles of the current issue-stage stall counter. */
    void elideIssueStalls(std::uint64_t cycles);

    /**
     * Lower bound (exact while no cycle in between is visited) on the
     * first cycle >= @p now a Waiting entry could be selected for
     * dispatch, from notBefore and its gating sources' schedules.
     */
    Cycle dispatchCandidate(const WindowEntry &e, Cycle now) const;

    /**
     * Earliest cycle >= @p from at which producer @p p stops gating a
     * consumer's dispatch, given the speculative pred/actual schedule
     * switch at missKnownAt (state frozen between visited cycles).
     */
    Cycle sourceFlipCycle(const WindowEntry &p, Cycle from,
                          unsigned d2e) const;

    /** Execute-stage action once operands are validated. */
    void performExec(WindowEntry &e, Cycle exec_start, ExecUnit &unit);
    void replay(WindowEntry &e, Cycle now);

    RsId stationFor(const TraceRecord &rec);
    unsigned forwardDelay() const
    {
        return params_.dataForwarding ? 1 : 3;
    }

    CoreParams params_;
    CpuId cpu_;
    MemSystem &mem_;

    stats::Group statGroup_;
    obs::CpiStack cpiStack_;
    std::unique_ptr<BranchPredictor> bpred_;
    std::unique_ptr<FetchUnit> fetch_;
    std::unique_ptr<LoadStoreQueue> lsq_;
    std::unique_ptr<RenameUnit> rename_;
    InstrWindow window_;
    std::vector<std::unique_ptr<ReservationStation>> rs_;
    std::vector<ExecUnit> units_; ///< 0-1 agen, 2-3 int, 4-5 fp, 6 br.

    std::array<std::uint64_t, kNumIntRegs + kNumFpRegs> lastProducer_{};
    std::vector<std::uint64_t> pendingStores_; ///< waiting for data.
    unsigned rseToggle_ = 0;
    unsigned rsfToggle_ = 0;
    Cycle lastCommitCycle_ = 0;
    PipeviewRecorder *pipeview_ = nullptr;

    std::uint64_t rawIssued_ = 0;    ///< see rawIssued().
    std::uint64_t rawCommitted_ = 0; ///< see rawCommitted().
    /**
     * Instruction state transitions made by the current tick; bumped
     * by every stage that moves an instruction. Host-side scheduling
     * hint only (never serialized, never a stat): when the last tick
     * transitioned anything, nextWorkCycle() reports "busy now"
     * without the full window scan — a conservative answer that can
     * only shrink a skip, never stretch one.
     */
    std::uint64_t activity_ = 0;
    bool workedLastTick_ = true; ///< conservative until first tick.
    Cycle commitStallAt_ = kCycleNever; ///< see injectCommitStall().
    static constexpr unsigned kRecentCommits = 16;
    std::array<RecentCommit, kRecentCommits> recent_{};
    unsigned recentNext_ = 0; ///< next write slot in recent_.

    std::vector<std::uint64_t> selectScratch_;
    std::vector<PendingExec> dueScratch_;

    stats::Scalar &committed_;
    stats::Scalar &committedLoads_;
    stats::Scalar &committedStores_;
    stats::Scalar &committedBranches_;
    stats::Scalar &replays_;
    stats::Scalar &windowFullStalls_;
    stats::Scalar &fetchEmptyStalls_;
    stats::Scalar &serializeStalls_;
    stats::Scalar &commitIdleCycles_;
    stats::Histogram &windowOccupancy_;
    stats::Histogram &fetchToCommit_;
};

} // namespace s64v

#endif // S64V_CPU_CORE_HH
