/**
 * @file
 * The 64-entry instruction window (commit-stack / reorder buffer) at
 * the heart of the out-of-order engine. Entries are addressed by
 * global sequence number; the window is a circular buffer between the
 * oldest un-committed and the youngest issued instruction.
 */

#ifndef S64V_CPU_ROB_HH
#define S64V_CPU_ROB_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "trace/record.hh"

namespace s64v
{

namespace ckpt { class SnapshotWriter; class SnapshotReader; }

/** Lifecycle of a window entry. */
enum class InstrState : std::uint8_t
{
    Waiting,   ///< in a reservation station.
    InFlight,  ///< dispatched; execute stage pending.
    Executing, ///< validated; completion time pending (loads).
    Done,      ///< result produced; eligible for commit.
};

/** One in-flight instruction. */
struct WindowEntry
{
    TraceRecord rec;
    std::uint64_t seq = 0;
    InstrState state = InstrState::Waiting;

    Cycle issueCycle = 0;
    Cycle dispatchCycle = 0; ///< last reservation-station dispatch.
    Cycle execCycle = 0;     ///< last (validated) execute stage.
    /** Cycle the instruction's result is architecturally complete. */
    Cycle doneCycle = kCycleNever;
    /**
     * Cycle a consumer's execute stage may use the result,
     * speculatively published at dispatch (speculative dispatch,
     * §3.1). kCycleNever until published.
     */
    Cycle predReady = kCycleNever;
    /** Confirmed consumer-usable cycle. kCycleNever until known. */
    Cycle actualReady = kCycleNever;
    /**
     * Loads only: the cycle the L1-miss cancel broadcast reaches the
     * reservation stations. Until then, dependents keep dispatching
     * on the optimistic hit schedule (and get replayed); afterwards
     * they wait for the real fill time. kCycleNever when not
     * applicable (hits, non-loads).
     */
    Cycle missKnownAt = kCycleNever;
    /** Re-dispatch cooldown after a replay (cancel recovery time). */
    Cycle notBefore = 0;

    /** Producer seqs for each source; 0 when the source was ready. */
    std::uint64_t src1Prod = 0;
    std::uint64_t src2Prod = 0;

    bool usesIntRename = false;
    bool usesFpRename = false;
    std::int32_t lsqIndex = -1; ///< LQ/SQ slot, or -1.
    std::uint8_t rsId = 0;      ///< owning reservation station.
    std::uint8_t replays = 0;

    bool predictedTaken = false;
    bool mispredicted = false;

    /**
     * Memory-level classification of a load's data access, recorded
     * at completion so the commit-slot accounting (obs/cpi_stack.hh)
     * can attribute a blocked head to the right miss category. @{
     */
    bool missedL1 = false;
    bool missedL2 = false;
    bool missedTlb = false;
    /** @} */
};

/** Circular instruction window addressed by sequence number. */
class InstrWindow
{
  public:
    explicit InstrWindow(unsigned capacity);

    bool full() const { return tail_ - head_ >= capacity_; }
    bool empty() const { return tail_ == head_; }
    std::size_t size() const
    {
        return static_cast<std::size_t>(tail_ - head_);
    }
    unsigned capacity() const { return capacity_; }

    /** Sequence number of the oldest in-window instruction. */
    std::uint64_t headSeq() const { return head_; }
    /** Sequence number the next issued instruction receives. */
    std::uint64_t nextSeq() const { return tail_; }

    /** Issue a new instruction; window must not be full. */
    WindowEntry &allocate(const TraceRecord &rec, Cycle cycle);

    /** Retire the oldest instruction; must be the head. */
    void retireHead();

    /** @return true iff @p seq is still inside the window. */
    bool contains(std::uint64_t seq) const
    {
        return seq >= head_ && seq < tail_;
    }

    WindowEntry &entry(std::uint64_t seq);
    const WindowEntry &entry(std::uint64_t seq) const;

    WindowEntry &head() { return entry(head_); }
    const WindowEntry &head() const { return entry(head_); }

    /** Serialize mutable state (checkpoint/restore). */
    void saveState(ckpt::SnapshotWriter &w) const;
    void restoreState(ckpt::SnapshotReader &r);

  private:
    unsigned capacity_;
    std::uint64_t head_ = 1; ///< seq 0 is reserved as "no producer".
    std::uint64_t tail_ = 1;
    std::vector<WindowEntry> buf_;
};

} // namespace s64v

#endif // S64V_CPU_ROB_HH
