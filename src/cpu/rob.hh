/**
 * @file
 * The 64-entry instruction window (commit-stack / reorder buffer) at
 * the heart of the out-of-order engine. Entries are addressed by
 * global sequence number; the window is a circular buffer between the
 * oldest un-committed and the youngest issued instruction.
 */

#ifndef S64V_CPU_ROB_HH
#define S64V_CPU_ROB_HH

#include <cstdint>
#include <vector>

#include "common/bitutil.hh"
#include "common/types.hh"
#include "trace/record.hh"

namespace s64v
{

namespace ckpt { class SnapshotWriter; class SnapshotReader; }

/** Lifecycle of a window entry. */
enum class InstrState : std::uint8_t
{
    Waiting,   ///< in a reservation station.
    InFlight,  ///< dispatched; execute stage pending.
    Executing, ///< validated; completion time pending (loads).
    Done,      ///< result produced; eligible for commit.
};

/** One in-flight instruction. */
struct WindowEntry
{
    TraceRecord rec;
    std::uint64_t seq = 0;
    InstrState state = InstrState::Waiting;

    Cycle issueCycle = 0;
    Cycle dispatchCycle = 0; ///< last reservation-station dispatch.
    Cycle execCycle = 0;     ///< last (validated) execute stage.
    /** Cycle the instruction's result is architecturally complete. */
    Cycle doneCycle = kCycleNever;
    /**
     * Cycle a consumer's execute stage may use the result,
     * speculatively published at dispatch (speculative dispatch,
     * §3.1). kCycleNever until published.
     */
    Cycle predReady = kCycleNever;
    /** Confirmed consumer-usable cycle. kCycleNever until known. */
    Cycle actualReady = kCycleNever;
    /**
     * Loads only: the cycle the L1-miss cancel broadcast reaches the
     * reservation stations. Until then, dependents keep dispatching
     * on the optimistic hit schedule (and get replayed); afterwards
     * they wait for the real fill time. kCycleNever when not
     * applicable (hits, non-loads).
     */
    Cycle missKnownAt = kCycleNever;
    /** Re-dispatch cooldown after a replay (cancel recovery time). */
    Cycle notBefore = 0;

    /** Producer seqs for each source; 0 when the source was ready. */
    std::uint64_t src1Prod = 0;
    std::uint64_t src2Prod = 0;

    bool usesIntRename = false;
    bool usesFpRename = false;
    std::int32_t lsqIndex = -1; ///< LQ/SQ slot, or -1.
    std::uint8_t rsId = 0;      ///< owning reservation station.
    std::uint8_t replays = 0;

    bool predictedTaken = false;
    bool mispredicted = false;

    /**
     * Memory-level classification of a load's data access, recorded
     * at completion so the commit-slot accounting (obs/cpi_stack.hh)
     * can attribute a blocked head to the right miss category. @{
     */
    bool missedL1 = false;
    bool missedL2 = false;
    bool missedTlb = false;
    /** @} */
};

/** Circular instruction window addressed by sequence number. */
class InstrWindow
{
  public:
    explicit InstrWindow(unsigned capacity);

    bool full() const { return tail_ - head_ >= capacity_; }
    bool empty() const { return tail_ == head_; }
    std::size_t size() const
    {
        return static_cast<std::size_t>(tail_ - head_);
    }
    unsigned capacity() const { return capacity_; }

    /** Sequence number of the oldest in-window instruction. */
    std::uint64_t headSeq() const { return head_; }
    /** Sequence number the next issued instruction receives. */
    std::uint64_t nextSeq() const { return tail_; }

    /** Issue a new instruction; window must not be full. */
    WindowEntry &allocate(const TraceRecord &rec, Cycle cycle);

    /** Retire the oldest instruction; must be the head. */
    void retireHead();

    /** @return true iff @p seq is still inside the window. */
    bool contains(std::uint64_t seq) const
    {
        return seq >= head_ && seq < tail_;
    }

    /**
     * Entry lookup on the hot path: a mask index after a range
     * check (checkRange panics out of line on violation, so the
     * inlined fast path is branch + AND).
     */
    WindowEntry &entry(std::uint64_t seq)
    {
        if (!contains(seq))
            checkRange(seq);
        return buf_[slotOf(seq)];
    }
    const WindowEntry &entry(std::uint64_t seq) const
    {
        return const_cast<InstrWindow *>(this)->entry(seq);
    }

    WindowEntry &head() { return entry(head_); }
    const WindowEntry &head() const { return entry(head_); }

    /**
     * Transition @p e to state @p s. All state changes go through
     * here so the struct-of-arrays waiting mask (the hot dispatch
     * scan's index) stays coherent with the per-entry field.
     */
    void setState(WindowEntry &e, InstrState s)
    {
        waiting_.assign(slotOf(e.seq), s == InstrState::Waiting);
        e.state = s;
    }

    /**
     * Invoke @p fn(entry) for every Waiting entry, in slot (not
     * sequence) order — callers that need a minimum over entries are
     * order-independent. @p fn returns false to stop early. Iterates
     * only the set bits of the waiting mask, so a window full of
     * in-flight/done instructions costs a few word tests instead of
     * an O(capacity) branchy walk.
     */
    template <typename Fn>
    void forEachWaiting(Fn &&fn) const
    {
        waiting_.forEach([&](std::size_t slot) -> bool {
            return fn(buf_[slot]);
        });
    }

    /** Serialize mutable state (checkpoint/restore). */
    void saveState(ckpt::SnapshotWriter &w) const;
    void restoreState(ckpt::SnapshotReader &r);

  private:
    /** Out-of-line panic for entry(): keeps the hot path small. */
    [[noreturn]] void checkRange(std::uint64_t seq) const;

    std::size_t slotOf(std::uint64_t seq) const
    {
        return static_cast<std::size_t>(seq & (buf_.size() - 1));
    }

    unsigned capacity_;
    std::uint64_t head_ = 1; ///< seq 0 is reserved as "no producer".
    std::uint64_t tail_ = 1;
    std::vector<WindowEntry> buf_;
    /**
     * Derived struct-of-arrays index: bit per buffer slot, set iff
     * that slot holds a live entry in InstrState::Waiting. Rebuilt
     * from the entries on restore, never serialized.
     */
    DenseBits waiting_;
};

} // namespace s64v

#endif // S64V_CPU_ROB_HH
