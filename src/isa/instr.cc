#include "isa/instr.hh"

#include "common/logging.hh"

namespace s64v
{

const char *
className(InstrClass c)
{
    switch (c) {
      case InstrClass::IntAlu: return "int";
      case InstrClass::IntMul: return "imul";
      case InstrClass::IntDiv: return "idiv";
      case InstrClass::FpAdd: return "fadd";
      case InstrClass::FpMul: return "fmul";
      case InstrClass::FpMulAdd: return "fma";
      case InstrClass::FpDiv: return "fdiv";
      case InstrClass::Load: return "ld";
      case InstrClass::Store: return "st";
      case InstrClass::BranchCond: return "bcc";
      case InstrClass::BranchUncond: return "ba";
      case InstrClass::Call: return "call";
      case InstrClass::Return: return "ret";
      case InstrClass::Special: return "spec";
      case InstrClass::Nop: return "nop";
      default: return "?";
    }
}

InstrClass
classFromName(const std::string &name)
{
    for (int i = 0; i < static_cast<int>(InstrClass::NumClasses); ++i) {
        auto c = static_cast<InstrClass>(i);
        if (name == className(c))
            return c;
    }
    panic("unknown instruction class name '%s'", name.c_str());
}

} // namespace s64v
