#include "isa/instr.hh"

#include "common/logging.hh"

namespace s64v
{

bool
isMemClass(InstrClass c)
{
    return c == InstrClass::Load || c == InstrClass::Store;
}

bool
isLoadClass(InstrClass c)
{
    return c == InstrClass::Load;
}

bool
isStoreClass(InstrClass c)
{
    return c == InstrClass::Store;
}

bool
isBranchClass(InstrClass c)
{
    return c == InstrClass::BranchCond || c == InstrClass::BranchUncond ||
           c == InstrClass::Call || c == InstrClass::Return;
}

bool
isCondBranchClass(InstrClass c)
{
    return c == InstrClass::BranchCond;
}

bool
isFpClass(InstrClass c)
{
    return c == InstrClass::FpAdd || c == InstrClass::FpMul ||
           c == InstrClass::FpMulAdd || c == InstrClass::FpDiv;
}

bool
isIntExecClass(InstrClass c)
{
    return c == InstrClass::IntAlu || c == InstrClass::IntMul ||
           c == InstrClass::IntDiv || c == InstrClass::Nop ||
           c == InstrClass::Special;
}

bool
isSpecialClass(InstrClass c)
{
    return c == InstrClass::Special;
}

unsigned
execLatency(InstrClass c)
{
    switch (c) {
      case InstrClass::IntAlu:
      case InstrClass::Nop:
        return 1;
      case InstrClass::IntMul:
        return 4;
      case InstrClass::IntDiv:
        return 37;
      case InstrClass::FpAdd:
        return 4;
      case InstrClass::FpMul:
        return 4;
      case InstrClass::FpMulAdd:
        return 4;
      case InstrClass::FpDiv:
        return 19;
      case InstrClass::Load:
      case InstrClass::Store:
        return 1; // address generation; cache time added separately
      case InstrClass::BranchCond:
      case InstrClass::BranchUncond:
      case InstrClass::Call:
      case InstrClass::Return:
        return 1;
      case InstrClass::Special:
        return 1; // modelled separately (see SpecialInstrMode)
      default:
        panic("execLatency: bad class %d", static_cast<int>(c));
    }
}

bool
isUnpipelined(InstrClass c)
{
    return c == InstrClass::IntDiv || c == InstrClass::FpDiv;
}

const char *
className(InstrClass c)
{
    switch (c) {
      case InstrClass::IntAlu: return "int";
      case InstrClass::IntMul: return "imul";
      case InstrClass::IntDiv: return "idiv";
      case InstrClass::FpAdd: return "fadd";
      case InstrClass::FpMul: return "fmul";
      case InstrClass::FpMulAdd: return "fma";
      case InstrClass::FpDiv: return "fdiv";
      case InstrClass::Load: return "ld";
      case InstrClass::Store: return "st";
      case InstrClass::BranchCond: return "bcc";
      case InstrClass::BranchUncond: return "ba";
      case InstrClass::Call: return "call";
      case InstrClass::Return: return "ret";
      case InstrClass::Special: return "spec";
      case InstrClass::Nop: return "nop";
      default: return "?";
    }
}

InstrClass
classFromName(const std::string &name)
{
    for (int i = 0; i < static_cast<int>(InstrClass::NumClasses); ++i) {
        auto c = static_cast<InstrClass>(i);
        if (name == className(c))
            return c;
    }
    panic("unknown instruction class name '%s'", name.c_str());
}

} // namespace s64v
