/**
 * @file
 * SPARC-V9-flavoured instruction abstraction. The performance model is
 * trace driven, so instructions carry only the attributes that affect
 * timing: an operation class, register operands, and (for memory and
 * control transfer) effective address / outcome information recorded
 * in the trace.
 */

#ifndef S64V_ISA_INSTR_HH
#define S64V_ISA_INSTR_HH

#include <cstdint>
#include <string>

namespace s64v
{

/** Timing-relevant operation classes. */
enum class InstrClass : std::uint8_t
{
    IntAlu,      ///< add/sub/logical/shift/sethi; 1-cycle integer op.
    IntMul,      ///< integer multiply.
    IntDiv,      ///< integer divide (long, unpipelined).
    FpAdd,       ///< FP add/sub/compare/convert.
    FpMul,       ///< FP multiply.
    FpMulAdd,    ///< fused multiply-add (the SPARC64 V FL units).
    FpDiv,       ///< FP divide / sqrt (long, unpipelined).
    Load,        ///< memory load.
    Store,       ///< memory store.
    BranchCond,  ///< conditional branch.
    BranchUncond,///< unconditional branch / jump.
    Call,        ///< call (writes link register).
    Return,      ///< return (jmpl through link).
    Special,     ///< membar / atomic / register-window spill-fill etc.
    Nop,         ///< no-op.
    NumClasses
};

/** Register identifiers: 0..63 integer, 64..127 floating point. */
using RegId = std::uint8_t;

constexpr RegId kNoReg = 0xff;
constexpr RegId kFirstFpReg = 64;
constexpr unsigned kNumIntRegs = 64;
constexpr unsigned kNumFpRegs = 64;

/** @return true iff @p r names a floating-point register. */
constexpr bool
isFpReg(RegId r)
{
    return r != kNoReg && r >= kFirstFpReg;
}

/**
 * Static attribute queries on an operation class. Defined inline:
 * they sit on the per-entry hot paths of the issue/dispatch/commit
 * scans, where an out-of-line call per query dominates the compare
 * itself. @{
 */
constexpr bool
isMemClass(InstrClass c)
{
    return c == InstrClass::Load || c == InstrClass::Store;
}

constexpr bool
isLoadClass(InstrClass c)
{
    return c == InstrClass::Load;
}

constexpr bool
isStoreClass(InstrClass c)
{
    return c == InstrClass::Store;
}

constexpr bool
isBranchClass(InstrClass c)
{
    return c == InstrClass::BranchCond ||
        c == InstrClass::BranchUncond || c == InstrClass::Call ||
        c == InstrClass::Return;
}

constexpr bool
isCondBranchClass(InstrClass c)
{
    return c == InstrClass::BranchCond;
}

constexpr bool
isFpClass(InstrClass c)
{
    return c == InstrClass::FpAdd || c == InstrClass::FpMul ||
        c == InstrClass::FpMulAdd || c == InstrClass::FpDiv;
}

constexpr bool
isIntExecClass(InstrClass c)
{
    return c == InstrClass::IntAlu || c == InstrClass::IntMul ||
        c == InstrClass::IntDiv || c == InstrClass::Nop ||
        c == InstrClass::Special;
}

constexpr bool
isSpecialClass(InstrClass c)
{
    return c == InstrClass::Special;
}
/** @} */

/**
 * Execution latency in cycles for @p c on the SPARC64 V pipelines
 * (loads report the address-generation part only; cache access time
 * is added by the memory model). 0 for an out-of-range class — the
 * callers all sit behind trace validation.
 */
constexpr unsigned
execLatency(InstrClass c)
{
    switch (c) {
      case InstrClass::IntAlu:
      case InstrClass::Nop:
        return 1;
      case InstrClass::IntMul:
        return 4;
      case InstrClass::IntDiv:
        return 37;
      case InstrClass::FpAdd:
      case InstrClass::FpMul:
      case InstrClass::FpMulAdd:
        return 4;
      case InstrClass::FpDiv:
        return 19;
      case InstrClass::Load:
      case InstrClass::Store:
        return 1; // address generation; cache time added separately
      case InstrClass::BranchCond:
      case InstrClass::BranchUncond:
      case InstrClass::Call:
      case InstrClass::Return:
        return 1;
      case InstrClass::Special:
        return 1; // modelled separately (see SpecialInstrMode)
      default:
        return 0;
    }
}

/** @return true iff the unit is busy (unpipelined) while executing. */
constexpr bool
isUnpipelined(InstrClass c)
{
    return c == InstrClass::IntDiv || c == InstrClass::FpDiv;
}

/** Short mnemonic-like name for dumps ("int", "fma", "ld", ...). */
const char *className(InstrClass c);

/** Parse the result of className(); panics on unknown names. */
InstrClass classFromName(const std::string &name);

} // namespace s64v

#endif // S64V_ISA_INSTR_HH
