/**
 * @file
 * SPARC-V9-flavoured instruction abstraction. The performance model is
 * trace driven, so instructions carry only the attributes that affect
 * timing: an operation class, register operands, and (for memory and
 * control transfer) effective address / outcome information recorded
 * in the trace.
 */

#ifndef S64V_ISA_INSTR_HH
#define S64V_ISA_INSTR_HH

#include <cstdint>
#include <string>

namespace s64v
{

/** Timing-relevant operation classes. */
enum class InstrClass : std::uint8_t
{
    IntAlu,      ///< add/sub/logical/shift/sethi; 1-cycle integer op.
    IntMul,      ///< integer multiply.
    IntDiv,      ///< integer divide (long, unpipelined).
    FpAdd,       ///< FP add/sub/compare/convert.
    FpMul,       ///< FP multiply.
    FpMulAdd,    ///< fused multiply-add (the SPARC64 V FL units).
    FpDiv,       ///< FP divide / sqrt (long, unpipelined).
    Load,        ///< memory load.
    Store,       ///< memory store.
    BranchCond,  ///< conditional branch.
    BranchUncond,///< unconditional branch / jump.
    Call,        ///< call (writes link register).
    Return,      ///< return (jmpl through link).
    Special,     ///< membar / atomic / register-window spill-fill etc.
    Nop,         ///< no-op.
    NumClasses
};

/** Register identifiers: 0..63 integer, 64..127 floating point. */
using RegId = std::uint8_t;

constexpr RegId kNoReg = 0xff;
constexpr RegId kFirstFpReg = 64;
constexpr unsigned kNumIntRegs = 64;
constexpr unsigned kNumFpRegs = 64;

/** @return true iff @p r names a floating-point register. */
constexpr bool
isFpReg(RegId r)
{
    return r != kNoReg && r >= kFirstFpReg;
}

/** Static attribute queries on an operation class. @{ */
bool isMemClass(InstrClass c);
bool isLoadClass(InstrClass c);
bool isStoreClass(InstrClass c);
bool isBranchClass(InstrClass c);
bool isCondBranchClass(InstrClass c);
bool isFpClass(InstrClass c);
bool isIntExecClass(InstrClass c);
bool isSpecialClass(InstrClass c);
/** @} */

/**
 * Execution latency in cycles for @p c on the SPARC64 V pipelines
 * (loads report the address-generation part only; cache access time
 * is added by the memory model).
 */
unsigned execLatency(InstrClass c);

/** @return true iff the unit is busy (unpipelined) while executing. */
bool isUnpipelined(InstrClass c);

/** Short mnemonic-like name for dumps ("int", "fma", "ld", ...). */
const char *className(InstrClass c);

/** Parse the result of className(); panics on unknown names. */
InstrClass classFromName(const std::string &name);

} // namespace s64v

#endif // S64V_ISA_INSTR_HH
