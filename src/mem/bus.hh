/**
 * @file
 * System bus model: a shared, bandwidth-limited resource connecting
 * the per-processor SX-units to the memory controller and to each
 * other. Occupancy-based: each transaction reserves the bus for
 * bytes / bytesPerCycle cycles; later requests queue behind it.
 */

#ifndef S64V_MEM_BUS_HH
#define S64V_MEM_BUS_HH

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/memtypes.hh"

namespace s64v
{

namespace obs { class ChromeTraceWriter; }
namespace ckpt { class SnapshotWriter; class SnapshotReader; }

/** Shared system bus with occupancy accounting. */
class Bus
{
  public:
    Bus(const BusParams &params, const std::string &name,
        stats::Group *parent);

    /**
     * Reserve the bus for a transaction of @p bytes starting no
     * earlier than @p cycle.
     * @return the cycle the transaction's transfer completes.
     */
    Cycle transfer(Cycle cycle, unsigned bytes);

    /**
     * Address/command-only transaction (snoop broadcast, upgrade).
     * @return completion cycle of the command phase.
     */
    Cycle command(Cycle cycle);

    /** Earliest cycle the data bus is free (for tests). */
    Cycle freeAt() const { return dataBusyUntil_; }

    /**
     * Earliest future cycle (> @p now) either bus phase frees up, or
     * kCycleNever when both are already idle — the skip-ahead
     * kernel's bus bound.
     */
    Cycle nextRelease(Cycle now) const
    {
        Cycle earliest = kCycleNever;
        if (addrBusyUntil_ > now)
            earliest = addrBusyUntil_;
        if (dataBusyUntil_ > now && dataBusyUntil_ < earliest)
            earliest = dataBusyUntil_;
        return earliest;
    }

    /**
     * Fault injection (--inject-fault=lost-grant:<cycle>): from
     * @p cycle on, the arbiter never grants again — transactions get
     * an unreachable completion cycle, which must trip the watchdog
     * rather than hang the run.
     */
    void injectLostGrant(Cycle cycle) { lostGrantAt_ = cycle; }

    std::uint64_t transactions() const
    {
        return transactions_.value();
    }
    std::uint64_t conflictCycles() const
    {
        return conflictCycles_.value();
    }

    /** Per-request wait-for-the-bus distribution. */
    const stats::Distribution &queueDelayDist() const
    {
        return queueDelay_;
    }

    /**
     * Record every bus occupancy span into @p writer (data and
     * address phases on separate tracks). Pass nullptr to detach.
     */
    void attachTrace(obs::ChromeTraceWriter *writer);

    /** Serialize arbitration state (checkpoint/restore). */
    void saveState(ckpt::SnapshotWriter &w) const;
    void restoreState(ckpt::SnapshotReader &r);

  private:
    Cycle occupy(Cycle *busy_until, Cycle cycle, Cycle duration,
                 unsigned trace_tid);

    BusParams params_;
    /**
     * Split-transaction bus: the address/command phase and the data
     * phase arbitrate independently, so a long-latency request's
     * future data transfer does not block younger commands.
     */
    Cycle addrBusyUntil_ = 0;
    Cycle dataBusyUntil_ = 0;
    Cycle lostGrantAt_ = kCycleNever; ///< fault injection; see above.

    obs::ChromeTraceWriter *trace_ = nullptr;
    unsigned dataTid_ = 0;
    unsigned addrTid_ = 0;

    stats::Group statGroup_;
    stats::Scalar &transactions_;
    stats::Scalar &busyCycles_;
    stats::Scalar &conflictCycles_;
    stats::Distribution &queueDelay_;
};

} // namespace s64v

#endif // S64V_MEM_BUS_HH
