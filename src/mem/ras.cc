#include "mem/ras.hh"

#include <cmath>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace s64v
{

ErrorProcess::ErrorProcess(const RasParams &params,
                           const std::string &name,
                           stats::Group *parent)
    : params_(params), statGroup_(name, parent),
      corrected_(statGroup_.scalar("corrected_errors",
                                   "correctable errors fixed in "
                                   "line"))
{
    if (params_.errorsPerMAccess < 0.0)
        fatal("ras '%s': negative error rate", name.c_str());
    // Map the rate onto a 20-bit comparison threshold: an access
    // fires when hash(ordinal) mod 2^20 < threshold.
    const double per_access = params_.errorsPerMAccess / 1e6;
    threshold_ = static_cast<std::uint64_t>(
        std::llround(per_access * (1 << 20)));
    if (params_.errorsPerMAccess > 0.0 && threshold_ == 0)
        threshold_ = 1; // keep tiny rates observable.
}

unsigned
ErrorProcess::onAccess()
{
    if (threshold_ == 0)
        return 0;
    const std::uint64_t h = mix64(++ordinal_) & ((1 << 20) - 1);
    if (h < threshold_) {
        ++corrected_;
        return params_.correctionLatency;
    }
    return 0;
}

} // namespace s64v
