#include "mem/tlb.hh"

#include "ckpt/snapshot.hh"
#include "common/bitutil.hh"
#include "common/logging.hh"

namespace s64v
{

Tlb::Tlb(const TlbParams &params, const std::string &name,
         stats::Group *parent)
    : params_(params), statGroup_(name, parent),
      accesses_(statGroup_.scalar("accesses", "translations")),
      misses_(statGroup_.scalar("misses", "table walks"))
{
    if (params_.assoc == 0 || params_.entries % params_.assoc != 0)
        fatal("tlb '%s': bad geometry %u/%u", name.c_str(),
              params_.entries, params_.assoc);
    numSets_ = params_.entries / params_.assoc;
    if (!isPowerOf2(numSets_))
        fatal("tlb '%s': set count %u not a power of two",
              name.c_str(), numSets_);
    entries_.resize(params_.entries);
    statGroup_.formula("miss_ratio", "misses / accesses",
                       [this] { return missRatio(); });
}

unsigned
Tlb::translate(Addr addr, Cycle cycle)
{
    (void)cycle;
    ++accesses_;
    const Addr vpn = addr / params_.pageBytes;
    const unsigned set = static_cast<unsigned>(vpn & (numSets_ - 1));
    Entry *base = &entries_[static_cast<std::size_t>(set) *
                            params_.assoc];

    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].vpn == vpn) {
            base[w].lru = ++lruTick_;
            return 0;
        }
    }

    ++misses_;
    Entry *victim = base;
    for (unsigned w = 1; w < params_.assoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }
    victim->vpn = vpn;
    victim->valid = true;
    victim->lru = ++lruTick_;
    return params_.walkLatency;
}

double
Tlb::missRatio() const
{
    const std::uint64_t a = accesses_.value();
    return a ? static_cast<double>(misses_.value()) / a : 0.0;
}

void
Tlb::flush()
{
    for (Entry &e : entries_)
        e.valid = false;
}


void
Tlb::saveState(ckpt::SnapshotWriter &w) const
{
    w.putU64(lruTick_);
    w.putU64(entries_.size());
    for (const Entry &e : entries_) {
        w.putU64(e.vpn);
        w.putBool(e.valid);
        w.putU64(e.lru);
    }
}

void
Tlb::restoreState(ckpt::SnapshotReader &r)
{
    lruTick_ = r.getU64();
    r.require(r.getU64() == entries_.size(),
              "TLB geometry differs (sets*ways)");
    for (Entry &e : entries_) {
        e.vpn = r.getU64();
        e.valid = r.getBool();
        e.lru = r.getU64();
    }
}

} // namespace s64v
