/**
 * @file
 * The full timed memory system: per-processor L1I/L1D/TLBs/L2 with
 * hardware prefetch, a shared system bus, the memory controller, and
 * snooping coherence for SMP configurations. This is the "detailed
 * memory system model" half of the paper's performance model.
 */

#ifndef S64V_MEM_HIERARCHY_HH
#define S64V_MEM_HIERARCHY_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/coherence.hh"
#include "mem/memctrl.hh"
#include "mem/memtypes.hh"
#include "mem/prefetch.hh"
#include "mem/tlb.hh"

namespace s64v
{

/** Configuration of the whole memory system. */
struct MemParams
{
    CacheParams l1i{.name = "l1i", .sizeBytes = 128 << 10, .assoc = 2,
                    .latency = 4, .mshrs = 4};
    CacheParams l1d{.name = "l1d", .sizeBytes = 128 << 10, .assoc = 2,
                    .latency = 4, .mshrs = 16};
    CacheParams l2{.name = "l2", .sizeBytes = 2 << 20, .assoc = 4,
                   .latency = 12, .mshrs = 12};
    TlbParams itlb{.entries = 256, .assoc = 4};
    TlbParams dtlb{.entries = 512, .assoc = 4};
    BusParams bus;
    MemCtrlParams memctrl;
    SnoopParams snoop;
    PrefetchParams prefetch;
    unsigned l1ToL2Latency = 2;

    /** Idealization switches for the Figure 7 breakdown. @{ */
    bool perfectL1 = false;
    bool perfectL2 = false;
    bool perfectTlb = false;
    /** @} */
};

/**
 * Timed memory system shared by every core of a (possibly SMP)
 * machine. The CPU model calls fetch()/data(); timing is computed by
 * walking the hierarchy and reserving occupancy on shared resources.
 */
class MemSystem
{
  public:
    MemSystem(const MemParams &params, unsigned num_cpus,
              stats::Group *parent);

    /** Instruction fetch of the line containing @p addr. */
    AccessResult fetch(CpuId cpu, Addr addr, Cycle cycle);

    /**
     * Data access. Loads call with is_write=false at issue; stores
     * call with is_write=true when they retire from the store queue.
     */
    AccessResult data(CpuId cpu, Addr addr, bool is_write,
                      Cycle cycle);

    const MemParams &params() const { return params_; }
    unsigned numCpus() const
    {
        return static_cast<unsigned>(cpus_.size());
    }

    /** Component access for experiments and tests. @{ */
    TimedCache &l1i(CpuId cpu) { return *cpus_[cpu]->l1i; }
    TimedCache &l1d(CpuId cpu) { return *cpus_[cpu]->l1d; }
    TimedCache &l2(CpuId cpu) { return *cpus_[cpu]->l2; }
    Tlb &dtlb(CpuId cpu) { return *cpus_[cpu]->dtlb; }
    Tlb &itlb(CpuId cpu) { return *cpus_[cpu]->itlb; }
    Bus &bus() { return *bus_; }
    MemCtrl &memCtrl() { return *memCtrl_; }
    CoherenceController &coherence() { return *coherence_; }
    /** @} */

    /**
     * Earliest future cycle (> @p now) any in-flight fill lands or a
     * shared resource (bus phase, memory channel) frees up, over all
     * CPUs — or kCycleNever when the whole hierarchy is quiescent.
     * The memory system is lazily timed (never ticked), so this is
     * purely a skip bound for the kernel: it must not mutate state.
     */
    Cycle earliestPendingCompletion(Cycle now) const;

    /** Aggregate L2 demand-miss ratio over all CPUs (Figure 15/17). */
    double l2DemandMissRatio() const;
    /** Aggregate L2 miss ratio including prefetches (Figure 17). */
    double l2MissRatio() const;

    /**
     * Virtual-to-pseudo-physical translation used by the hierarchy
     * (1-MiB placement chunks). Public so tests and tools can compute
     * the cache-visible address of a virtual location.
     */
    static Addr physAddr(Addr va);

    /**
     * Serialize every timed structure in the hierarchy (per-CPU
     * caches/TLBs/prefetcher, bus, memory controller). The snooping
     * coherence controller reads cache state; it holds none of its
     * own beyond stats, which travel with the stats tree.
     */
    void saveState(ckpt::SnapshotWriter &w) const;
    void restoreState(ckpt::SnapshotReader &r);

  private:
    struct PerCpu
    {
        std::unique_ptr<stats::Group> group;
        std::unique_ptr<TimedCache> l1i;
        std::unique_ptr<TimedCache> l1d;
        std::unique_ptr<TimedCache> l2;
        std::unique_ptr<Tlb> itlb;
        std::unique_ptr<Tlb> dtlb;
        std::unique_ptr<StreamPrefetcher> prefetcher;
    };

    /**
     * Service an L2 miss through bus / snoop / memory.
     * @return cycle the line arrives at the L2.
     */
    Cycle memoryPath(CpuId cpu, Addr addr, bool is_write, Cycle cycle);

    /** Handle an L2 fill including evictions and prefetch kicks. */
    Cycle l2Access(CpuId cpu, Addr addr, bool is_write, bool is_fetch,
                   Cycle cycle, bool &l2_hit);

    /** Execute prefetch candidates proposed by a demand request. */
    void runPrefetches(CpuId cpu, const std::vector<Addr> &candidates,
                       Cycle cycle);

    void handleL2Eviction(CpuId cpu, const Eviction &ev, Cycle cycle);

    MemParams params_;
    std::vector<std::unique_ptr<PerCpu>> cpus_;
    std::unique_ptr<Bus> bus_;
    std::unique_ptr<MemCtrl> memCtrl_;
    std::unique_ptr<CoherenceController> coherence_;
    std::vector<Addr> prefetchScratch_;
};

} // namespace s64v

#endif // S64V_MEM_HIERARCHY_HH
