/**
 * @file
 * Main-memory controller: multiple channels, each an occupancy-based
 * resource with a fixed access latency. Queueing delay emerges when
 * all channels are busy.
 */

#ifndef S64V_MEM_MEMCTRL_HH
#define S64V_MEM_MEMCTRL_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/memtypes.hh"

namespace s64v
{

namespace ckpt { class SnapshotWriter; class SnapshotReader; }

/** Timed memory controller. */
class MemCtrl
{
  public:
    MemCtrl(const MemCtrlParams &params, stats::Group *parent);

    /**
     * Service a line read arriving at @p cycle.
     * @return the cycle the critical word is available at the pins.
     */
    Cycle read(Cycle cycle);

    /** Service a writeback; returns when the channel frees. */
    Cycle write(Cycle cycle);

    std::uint64_t reads() const { return reads_.value(); }
    std::uint64_t writes() const { return writes_.value(); }
    std::uint64_t queueCycles() const { return queueCycles_.value(); }

    /**
     * Earliest future cycle (> @p now) a busy channel frees up, or
     * kCycleNever when all are idle — the skip-ahead kernel's
     * memory-controller bound.
     */
    Cycle nextRelease(Cycle now) const
    {
        Cycle earliest = kCycleNever;
        for (Cycle busy : channelBusy_)
            if (busy > now && busy < earliest)
                earliest = busy;
        return earliest;
    }

    /** Serialize channel occupancy (checkpoint/restore). */
    void saveState(ckpt::SnapshotWriter &w) const;
    void restoreState(ckpt::SnapshotReader &r);

  private:
    Cycle allocate(Cycle cycle);

    MemCtrlParams params_;
    std::vector<Cycle> channelBusy_;

    stats::Group statGroup_;
    stats::Scalar &reads_;
    stats::Scalar &writes_;
    stats::Scalar &queueCycles_;
};

} // namespace s64v

#endif // S64V_MEM_MEMCTRL_HH
