/**
 * @file
 * Snooping coherence across the per-processor L2 caches of an SMP
 * system. The paper's model "can model requests between L2 caches"
 * (§2.1); this controller provides the probe/invalidate/supply
 * operations, with inclusion maintained by back-invalidating the L1
 * caches above an L2 that loses a line.
 */

#ifndef S64V_MEM_COHERENCE_HH
#define S64V_MEM_COHERENCE_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/cache.hh"
#include "mem/memtypes.hh"

namespace s64v
{

/** Caches of one processor, as seen by the coherence controller. */
struct CacheCluster
{
    TimedCache *l1i = nullptr;
    TimedCache *l1d = nullptr;
    TimedCache *l2 = nullptr;
};

/** What a read snoop found in the other processors. */
enum class SnoopOutcome : std::uint8_t
{
    Miss,       ///< no other cache holds the line.
    SharedClean,///< clean copies exist elsewhere.
    DirtySupply,///< a dirty copy exists; L2-to-L2 supply.
};

/** Snooping MOESI-style controller (M/O folded into "dirty"). */
class CoherenceController
{
  public:
    CoherenceController(const SnoopParams &params,
                        stats::Group *parent);

    /** Register a processor's caches; call once per CPU, in order. */
    void addCluster(const CacheCluster &cluster);

    unsigned numCpus() const
    {
        return static_cast<unsigned>(clusters_.size());
    }

    /**
     * Probe the other processors for a read miss by @p requester.
     * A dirty owner's copy — whether the dirty data sits in its L2 or
     * still in its L1D — is downgraded to clean (ownership-style
     * supply with simultaneous memory update).
     */
    SnoopOutcome snoopRead(CpuId requester, Addr addr);

    /**
     * Invalidate every other processor's copies (store miss or
     * upgrade). @return true if a dirty copy was invalidated (its
     * data is supplied to the requester).
     */
    bool invalidateOthers(CpuId requester, Addr addr);

    /** @return true if any *other* processor holds the line. */
    bool othersHold(CpuId requester, Addr addr) const;

    /**
     * Inclusion maintenance: a processor's L2 lost @p addr, so remove
     * it from that processor's L1 caches as well.
     */
    void backInvalidate(CpuId cpu, Addr addr);

    const SnoopParams &params() const { return params_; }

    /** Cluster registered for @p cpu (invariant auditor access). */
    const CacheCluster &cluster(CpuId cpu) const
    {
        return clusters_[cpu];
    }

    /**
     * Fault injection (--inject-fault=lost-inval:<n>): invalidation
     * broadcast number @p index (0-based) is dropped on the floor,
     * leaving stale sharers for the invariant auditor to find.
     */
    void injectLostInvalidate(std::uint64_t index)
    {
        lostInvalidateIndex_ = index;
    }

    std::uint64_t dirtySupplies() const
    {
        return dirtySupplies_.value();
    }
    std::uint64_t invalidationsSent() const
    {
        return invalidationsSent_.value();
    }

  private:
    SnoopParams params_;
    std::vector<CacheCluster> clusters_;
    /** Broadcast index to drop, or ~0 for none (fault injection). */
    std::uint64_t lostInvalidateIndex_ = ~std::uint64_t{0};

    stats::Group statGroup_;
    stats::Scalar &snoops_;
    stats::Scalar &dirtySupplies_;
    stats::Scalar &sharedHits_;
    stats::Scalar &invalidationsSent_;
    stats::Scalar &backInvalidations_;
};

} // namespace s64v

#endif // S64V_MEM_COHERENCE_HH
