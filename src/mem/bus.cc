#include "mem/bus.hh"

#include <algorithm>

#include "common/logging.hh"

namespace s64v
{

Bus::Bus(const BusParams &params, const std::string &name,
         stats::Group *parent)
    : params_(params), statGroup_(name, parent),
      transactions_(statGroup_.scalar("transactions",
                                      "bus transactions")),
      busyCycles_(statGroup_.scalar("busy_cycles",
                                    "cycles the bus was occupied")),
      conflictCycles_(statGroup_.scalar("conflict_cycles",
                                        "cycles requests waited for "
                                        "the bus"))
{
    if (params_.bytesPerCycle == 0)
        fatal("bus '%s': zero bandwidth", name.c_str());
}

Cycle
Bus::occupy(Cycle *busy_until, Cycle cycle, Cycle duration)
{
    ++transactions_;
    const Cycle start = std::max(cycle, *busy_until);
    conflictCycles_ += start - cycle;
    busyCycles_ += duration;
    *busy_until = start + duration;
    return *busy_until;
}

Cycle
Bus::transfer(Cycle cycle, unsigned bytes)
{
    const Cycle duration =
        (bytes + params_.bytesPerCycle - 1) / params_.bytesPerCycle;
    return occupy(&dataBusyUntil_, cycle, duration);
}

Cycle
Bus::command(Cycle cycle)
{
    return occupy(&addrBusyUntil_, cycle, params_.requestLatency);
}

} // namespace s64v
