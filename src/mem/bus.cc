#include "mem/bus.hh"

#include "ckpt/snapshot.hh"
#include <algorithm>

#include "common/logging.hh"
#include "obs/chrome_trace.hh"

namespace s64v
{

Bus::Bus(const BusParams &params, const std::string &name,
         stats::Group *parent)
    : params_(params), statGroup_(name, parent),
      transactions_(statGroup_.scalar("transactions",
                                      "bus transactions")),
      busyCycles_(statGroup_.scalar("busy_cycles",
                                    "cycles the bus was occupied")),
      conflictCycles_(statGroup_.scalar("conflict_cycles",
                                        "cycles requests waited for "
                                        "the bus")),
      queueDelay_(statGroup_.distribution(
          "queue_delay",
          "cycles a request waited before its bus phase started"))
{
    if (params_.bytesPerCycle == 0)
        fatal("bus '%s': zero bandwidth", name.c_str());
}

void
Bus::attachTrace(obs::ChromeTraceWriter *writer)
{
    trace_ = writer;
    if (trace_) {
        dataTid_ = trace_->track(obs::ChromeTraceWriter::kMemPid,
                                 statGroup_.path() + ".data");
        addrTid_ = trace_->track(obs::ChromeTraceWriter::kMemPid,
                                 statGroup_.path() + ".addr");
    }
}

Cycle
Bus::occupy(Cycle *busy_until, Cycle cycle, Cycle duration,
            unsigned trace_tid)
{
    if (cycle >= lostGrantAt_) {
        // Injected arbiter failure: the request is accepted but its
        // grant never arrives. Half of kCycleNever keeps downstream
        // latency arithmetic from overflowing while staying far
        // beyond any watchdog grace window.
        ++transactions_;
        return kCycleNever / 2;
    }
    ++transactions_;
    const Cycle start = std::max(cycle, *busy_until);
    conflictCycles_ += start - cycle;
    queueDelay_.sample(static_cast<double>(start - cycle));
    busyCycles_ += duration;
    *busy_until = start + duration;
    if (trace_) {
        trace_->span(obs::ChromeTraceWriter::kMemPid, trace_tid,
                     "xfer", "bus", start, start + duration);
    }
    return *busy_until;
}

Cycle
Bus::transfer(Cycle cycle, unsigned bytes)
{
    const Cycle duration =
        (bytes + params_.bytesPerCycle - 1) / params_.bytesPerCycle;
    return occupy(&dataBusyUntil_, cycle, duration, dataTid_);
}

Cycle
Bus::command(Cycle cycle)
{
    return occupy(&addrBusyUntil_, cycle, params_.requestLatency,
                  addrTid_);
}


void
Bus::saveState(ckpt::SnapshotWriter &w) const
{
    w.putU64(addrBusyUntil_);
    w.putU64(dataBusyUntil_);
}

void
Bus::restoreState(ckpt::SnapshotReader &r)
{
    addrBusyUntil_ = r.getU64();
    dataBusyUntil_ = r.getU64();
}

} // namespace s64v
