#include "mem/memctrl.hh"

#include "ckpt/snapshot.hh"
#include <algorithm>

#include "common/logging.hh"

namespace s64v
{

MemCtrl::MemCtrl(const MemCtrlParams &params, stats::Group *parent)
    : params_(params), statGroup_("memctrl", parent),
      reads_(statGroup_.scalar("reads", "line reads serviced")),
      writes_(statGroup_.scalar("writes", "writebacks serviced")),
      queueCycles_(statGroup_.scalar("queue_cycles",
                                     "cycles requests waited for a "
                                     "free channel"))
{
    if (params_.channels == 0)
        fatal("memctrl: zero channels");
    channelBusy_.assign(params_.channels, 0);
}

Cycle
MemCtrl::allocate(Cycle cycle)
{
    auto it = std::min_element(channelBusy_.begin(),
                               channelBusy_.end());
    const Cycle start = std::max(cycle, *it);
    queueCycles_ += start - cycle;
    *it = start + params_.occupancy;
    return start;
}

Cycle
MemCtrl::read(Cycle cycle)
{
    ++reads_;
    return allocate(cycle) + params_.accessLatency;
}

Cycle
MemCtrl::write(Cycle cycle)
{
    ++writes_;
    return allocate(cycle) + params_.occupancy;
}


void
MemCtrl::saveState(ckpt::SnapshotWriter &w) const
{
    w.putU64(channelBusy_.size());
    for (Cycle c : channelBusy_)
        w.putU64(c);
}

void
MemCtrl::restoreState(ckpt::SnapshotReader &r)
{
    r.require(r.getU64() == channelBusy_.size(),
              "memory-controller channel count differs");
    for (Cycle &c : channelBusy_)
        c = r.getU64();
}

} // namespace s64v
