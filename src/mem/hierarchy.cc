#include "mem/hierarchy.hh"

#include <string>

#include "ckpt/snapshot.hh"
#include "common/bitutil.hh"
#include "common/logging.hh"

namespace s64v
{

MemSystem::MemSystem(const MemParams &params, unsigned num_cpus,
                     stats::Group *parent)
    : params_(params)
{
    if (num_cpus == 0)
        fatal("memory system needs at least one CPU");

    coherence_ = std::make_unique<CoherenceController>(params_.snoop,
                                                       parent);
    bus_ = std::make_unique<Bus>(params_.bus, "bus", parent);
    memCtrl_ = std::make_unique<MemCtrl>(params_.memctrl, parent);

    for (unsigned i = 0; i < num_cpus; ++i) {
        auto pc = std::make_unique<PerCpu>();
        pc->group = std::make_unique<stats::Group>(
            "mem" + std::to_string(i), parent);
        pc->l1i = std::make_unique<TimedCache>(params_.l1i,
                                               pc->group.get());
        pc->l1d = std::make_unique<TimedCache>(params_.l1d,
                                               pc->group.get());
        pc->l2 = std::make_unique<TimedCache>(params_.l2,
                                              pc->group.get());
        pc->itlb = std::make_unique<Tlb>(params_.itlb, "itlb",
                                         pc->group.get());
        pc->dtlb = std::make_unique<Tlb>(params_.dtlb, "dtlb",
                                         pc->group.get());
        pc->prefetcher = std::make_unique<StreamPrefetcher>(
            params_.prefetch, "prefetch", pc->group.get());
        coherence_->addCluster(CacheCluster{pc->l1i.get(),
                                            pc->l1d.get(),
                                            pc->l2.get()});
        cpus_.push_back(std::move(pc));
    }
}

Addr
MemSystem::physAddr(Addr va)
{
    // 1-MiB placement granularity: large allocations (buffer pools,
    // indexes) stay physically contiguous inside a chunk -- which is
    // what makes direct-mapped conflict behaviour realistic -- while
    // distinct chunks scatter, so the power-of-two virtual bases of
    // the synthetic address space do not all alias to cache set 0.
    constexpr unsigned kChunkShift = 20;
    const Addr vcn = va >> kChunkShift;
    const Addr pcn = mix64(vcn) & ((Addr{1} << 31) - 1);
    return (pcn << kChunkShift) |
        (va & ((Addr{1} << kChunkShift) - 1));
}

Cycle
MemSystem::memoryPath(CpuId cpu, Addr addr, bool is_write, Cycle cycle)
{
    // Address/command phase on the shared bus (also carries the snoop
    // broadcast in SMP systems).
    const Cycle cmd_done = bus_->command(cycle);

    if (cpus_.size() > 1) {
        const Cycle snoop_done =
            cmd_done + params_.snoop.snoopLatency;
        bool dirty_supply = false;
        if (is_write) {
            dirty_supply = coherence_->invalidateOthers(cpu, addr);
        } else {
            dirty_supply = coherence_->snoopRead(cpu, addr) ==
                SnoopOutcome::DirtySupply;
        }
        if (dirty_supply) {
            // L2-to-L2 transfer: supplier read-out plus a bus data
            // phase for the full line.
            return bus_->transfer(
                snoop_done + params_.snoop.cacheToCache, kLineSize);
        }
        const Cycle data = memCtrl_->read(snoop_done);
        return bus_->transfer(data, kLineSize);
    }

    const Cycle data = memCtrl_->read(cmd_done);
    return bus_->transfer(data, kLineSize);
}

void
MemSystem::handleL2Eviction(CpuId cpu, const Eviction &ev, Cycle cycle)
{
    if (!ev.valid)
        return;
    // Inclusion: the L1 caches may not keep a line the L2 lost.
    coherence_->backInvalidate(cpu, ev.lineAddr);
    if (ev.dirty) {
        cpus_[cpu]->l2->noteWriteback();
        const Cycle bus_done = bus_->transfer(cycle, kLineSize);
        memCtrl_->write(bus_done);
    }
}

void
MemSystem::runPrefetches(CpuId cpu, const std::vector<Addr> &candidates,
                         Cycle cycle)
{
    PerCpu &pc = *cpus_[cpu];
    for (Addr addr : candidates) {
        if (pc.l2->array().probe(addr) || pc.l2->pending(addr, cycle))
            continue;
        const Cycle ready = memoryPath(cpu, addr, false, cycle);
        const Eviction ev = pc.l2->fill(addr, ready, false,
                                        /*prefetched=*/true);
        handleL2Eviction(cpu, ev, ready);
        pc.l2->notePrefetchIssued();
    }
}

Cycle
MemSystem::l2Access(CpuId cpu, Addr addr, bool is_write, bool is_fetch,
                    Cycle cycle, bool &l2_hit)
{
    (void)is_fetch;
    PerCpu &pc = *cpus_[cpu];

    if (params_.perfectL2) {
        l2_hit = true;
        return cycle + params_.l2.totalLatency();
    }

    pc.l2->noteDemandAccess();
    prefetchScratch_.clear();
    pc.prefetcher->observe(addr, prefetchScratch_);

    const TimedCache::LookupResult res =
        pc.l2->lookup(addr, is_write, cycle);
    if (res.hit) {
        l2_hit = true;
        // Store hit on a line other processors hold: upgrade
        // transaction invalidating the other copies.
        if (is_write && cpus_.size() > 1 &&
            coherence_->othersHold(cpu, addr)) {
            bus_->command(res.ready);
            coherence_->invalidateOthers(cpu, addr);
        }
        runPrefetches(cpu, prefetchScratch_, cycle);
        return res.ready;
    }

    l2_hit = false;
    if (res.merged) {
        // A write merging into an in-flight read miss still needs the
        // upgrade: the original request did not invalidate remote
        // copies, and the merged store dirties the local line.
        if (is_write && cpus_.size() > 1 &&
            coherence_->othersHold(cpu, addr)) {
            bus_->command(res.ready);
            coherence_->invalidateOthers(cpu, addr);
        }
        runPrefetches(cpu, prefetchScratch_, cycle);
        return res.ready;
    }
    pc.l2->noteDemandMiss();

    const Cycle line_ready = memoryPath(cpu, addr, is_write,
                                        res.ready);
    const Eviction ev = pc.l2->fill(addr, line_ready, is_write);
    handleL2Eviction(cpu, ev, line_ready);
    // Prefetches launch when the demand request is observed, not
    // when its fill lands.
    runPrefetches(cpu, prefetchScratch_, cycle);
    return line_ready;
}

AccessResult
MemSystem::fetch(CpuId cpu, Addr addr, Cycle cycle)
{
    PerCpu &pc = *cpus_[cpu];
    AccessResult out;

    const unsigned tlb_pen = params_.perfectTlb
        ? 0 : pc.itlb->translate(addr, cycle);
    out.tlbMiss = tlb_pen != 0;
    Cycle t = cycle + tlb_pen;
    addr = physAddr(addr);

    if (params_.perfectL1) {
        out.ready = t + params_.l1i.totalLatency();
        return out;
    }

    pc.l1i->noteDemandAccess();
    const TimedCache::LookupResult res = pc.l1i->lookup(addr, false, t);
    if (res.hit) {
        out.ready = res.ready;
        return out;
    }

    out.l1Hit = false;
    if (res.merged) {
        out.ready = res.ready;
        return out;
    }
    pc.l1i->noteDemandMiss();

    const Cycle t2 = res.ready + params_.l1ToL2Latency;
    bool l2_hit = true;
    const Cycle line_ready = l2Access(cpu, addr, false, true, t2,
                                      l2_hit);
    out.l2Hit = l2_hit;
    const Eviction ev = pc.l1i->fill(addr, line_ready, false);
    (void)ev; // instruction lines are never dirty.
    out.ready = line_ready;
    return out;
}

AccessResult
MemSystem::data(CpuId cpu, Addr addr, bool is_write, Cycle cycle)
{
    PerCpu &pc = *cpus_[cpu];
    AccessResult out;

    const unsigned tlb_pen = params_.perfectTlb
        ? 0 : pc.dtlb->translate(addr, cycle);
    out.tlbMiss = tlb_pen != 0;
    Cycle t = cycle + tlb_pen;
    addr = physAddr(addr);

    if (params_.perfectL1) {
        out.ready = t + params_.l1d.totalLatency();
        return out;
    }

    pc.l1d->noteDemandAccess();
    const TimedCache::LookupResult res =
        pc.l1d->lookup(addr, is_write, t);
    if (res.hit) {
        // A store hitting a line other processors share still needs
        // an upgrade transaction to invalidate the remote copies.
        if (is_write && cpus_.size() > 1 &&
            coherence_->othersHold(cpu, addr)) {
            bus_->command(res.ready);
            coherence_->invalidateOthers(cpu, addr);
        }
        out.ready = res.ready;
        return out;
    }

    out.l1Hit = false;
    if (res.merged) {
        // Same upgrade obligation as the L2 merge path: a store
        // merging into a read miss's MSHR dirties the line here.
        if (is_write && cpus_.size() > 1 &&
            coherence_->othersHold(cpu, addr)) {
            bus_->command(res.ready);
            coherence_->invalidateOthers(cpu, addr);
        }
        out.ready = res.ready;
        return out;
    }
    pc.l1d->noteDemandMiss();

    const Cycle t2 = res.ready + params_.l1ToL2Latency;
    bool l2_hit = true;
    const Cycle line_ready = l2Access(cpu, addr, is_write, false, t2,
                                      l2_hit);
    out.l2Hit = l2_hit;

    const Eviction ev = pc.l1d->fill(addr, line_ready, is_write);
    if (ev.valid && ev.dirty) {
        // Copy-back into the (inclusive) L2.
        pc.l1d->noteWriteback();
        pc.l2->array().setDirty(ev.lineAddr);
    }
    out.ready = line_ready;
    return out;
}

Cycle
MemSystem::earliestPendingCompletion(Cycle now) const
{
    Cycle earliest = kCycleNever;
    const auto consider = [&earliest](Cycle c) {
        if (c < earliest)
            earliest = c;
    };
    for (const auto &pc : cpus_) {
        consider(pc->l1i->nextPendingFill(now));
        consider(pc->l1d->nextPendingFill(now));
        consider(pc->l2->nextPendingFill(now));
    }
    consider(bus_->nextRelease(now));
    consider(memCtrl_->nextRelease(now));
    return earliest;
}

double
MemSystem::l2DemandMissRatio() const
{
    std::uint64_t acc = 0, miss = 0;
    for (const auto &pc : cpus_) {
        acc += pc->l2->demandAccessCount();
        miss += pc->l2->demandMissCount();
    }
    return acc ? static_cast<double>(miss) / acc : 0.0;
}

double
MemSystem::l2MissRatio() const
{
    // Include prefetch traffic: every issued prefetch is a request
    // that missed (prefetches are only sent for absent lines).
    std::uint64_t acc = 0, miss = 0;
    for (const auto &pc : cpus_) {
        acc += pc->l2->demandAccessCount() +
            pc->l2->prefetchIssuedCount();
        miss += pc->l2->demandMissCount() +
            pc->l2->prefetchIssuedCount();
    }
    return acc ? static_cast<double>(miss) / acc : 0.0;
}


void
MemSystem::saveState(ckpt::SnapshotWriter &w) const
{
    w.putU32(static_cast<std::uint32_t>(cpus_.size()));
    for (const auto &cpu : cpus_) {
        cpu->l1i->saveState(w);
        cpu->l1d->saveState(w);
        cpu->l2->saveState(w);
        cpu->itlb->saveState(w);
        cpu->dtlb->saveState(w);
        cpu->prefetcher->saveState(w);
    }
    bus_->saveState(w);
    memCtrl_->saveState(w);
}

void
MemSystem::restoreState(ckpt::SnapshotReader &r)
{
    r.require(r.getU32() == cpus_.size(), "CPU count differs");
    for (auto &cpu : cpus_) {
        cpu->l1i->restoreState(r);
        cpu->l1d->restoreState(r);
        cpu->l2->restoreState(r);
        cpu->itlb->restoreState(r);
        cpu->dtlb->restoreState(r);
        cpu->prefetcher->restoreState(r);
    }
    bus_->restoreState(r);
    memCtrl_->restoreState(r);
}

} // namespace s64v
