/**
 * @file
 * Hardware prefetch engine for the on-chip L2 cache (paper §3.4). The
 * prefetch is triggered by L1-cache demand misses arriving at the L2;
 * a small stream table detects ascending line sequences ("chain
 * access patterns") and requests the next lines into the L2.
 */

#ifndef S64V_MEM_PREFETCH_HH
#define S64V_MEM_PREFETCH_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace s64v
{

namespace ckpt { class SnapshotWriter; class SnapshotReader; }

/** Stream-prefetcher configuration. */
struct PrefetchParams
{
    bool enabled = true;
    unsigned streams = 16;    ///< tracked concurrent streams.
    unsigned candidates = 32; ///< pre-training filter entries.
    unsigned degree = 2;      ///< lines fetched per trigger.
    unsigned trainThreshold = 2; ///< sequential hits before firing.
};

/**
 * Detects ascending line-address streams in the L2 demand-request
 * sequence and proposes prefetch candidates. The memory hierarchy
 * executes the candidates (they consume real bus and memory-
 * controller bandwidth).
 */
class StreamPrefetcher
{
  public:
    StreamPrefetcher(const PrefetchParams &params,
                     const std::string &name, stats::Group *parent);

    /**
     * Observe a demand request for the line containing @p addr and
     * append prefetch candidate line addresses to @p out.
     */
    void observe(Addr addr, std::vector<Addr> &out);

    bool enabled() const { return params_.enabled; }
    std::uint64_t trainings() const { return trainings_.value(); }

    /** Serialize stream/candidate tables (checkpoint/restore). */
    void saveState(ckpt::SnapshotWriter &w) const;
    void restoreState(ckpt::SnapshotReader &r);

  private:
    struct Stream
    {
        Addr nextLine = 0; ///< expected next line number.
        unsigned confidence = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    void saveTable(ckpt::SnapshotWriter &w,
                   const std::vector<Stream> &t) const;
    void restoreTable(ckpt::SnapshotReader &r,
                      std::vector<Stream> &t);

    PrefetchParams params_;
    std::vector<Stream> streams_;
    /**
     * Allocation filter: a line must show one sequential successor in
     * this table before it earns a stream entry, so random traffic
     * cannot evict trained streams.
     */
    std::vector<Stream> candidates_;
    std::uint64_t lruTick_ = 0;

    stats::Group statGroup_;
    stats::Scalar &observations_;
    stats::Scalar &trainings_;
    stats::Scalar &candidatesStat_;
};

} // namespace s64v

#endif // S64V_MEM_PREFETCH_HH
