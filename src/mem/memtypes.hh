/**
 * @file
 * Shared parameter structures and result types for the memory-system
 * model. Latencies are in CPU cycles at the SPARC64 V's 1.3 GHz.
 */

#ifndef S64V_MEM_MEMTYPES_HH
#define S64V_MEM_MEMTYPES_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "mem/ras.hh"

namespace s64v
{

/** Cache line size used throughout the model. */
constexpr unsigned kLineSize = 64;

/** Geometry and timing of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 128 << 10;
    unsigned assoc = 2;
    unsigned latency = 4;        ///< access (hit) latency in cycles.
    unsigned mshrs = 16;         ///< outstanding line misses.
    bool offChip = false;        ///< adds chip-crossing latency.
    unsigned offChipPenalty = 13;///< ~10 ns at 1.3 GHz (paper, §4.3.4).
    RasParams ras;               ///< ECC / degraded-way modelling.

    unsigned numSets() const
    {
        return static_cast<unsigned>(sizeBytes / (kLineSize * assoc));
    }
    unsigned totalLatency() const
    {
        return latency + (offChip ? offChipPenalty : 0);
    }
};

/** TLB geometry and page-walk cost. */
struct TlbParams
{
    unsigned entries = 512;
    unsigned assoc = 4;
    unsigned pageBytes = 8192;
    unsigned walkLatency = 40;
};

/** System bus between the SX-units and the memory system. */
struct BusParams
{
    unsigned bytesPerCycle = 8;   ///< usable bandwidth in CPU cycles.
    unsigned requestLatency = 4;  ///< address/command phase.
};

/** Main-memory controller. */
struct MemCtrlParams
{
    unsigned channels = 2;
    unsigned accessLatency = 120; ///< first-word latency.
    unsigned occupancy = 24;      ///< channel busy time per access.
};

/** SMP snooping parameters. */
struct SnoopParams
{
    unsigned snoopLatency = 16;      ///< broadcast + tag-probe time.
    unsigned cacheToCache = 36;      ///< L2-to-L2 transfer latency.
};

/** Result of a timed memory access. */
struct AccessResult
{
    Cycle ready = 0;    ///< cycle the data can be consumed.
    bool l1Hit = true;
    bool l2Hit = true;  ///< meaningful only when !l1Hit.
    bool tlbMiss = false; ///< translation paid a page-walk penalty.
};

} // namespace s64v

#endif // S64V_MEM_MEMTYPES_HH
