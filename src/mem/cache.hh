/**
 * @file
 * Set-associative cache tag arrays and the timed non-blocking cache
 * built on top of them (MSHRs, copy-back dirty state, prefetch
 * marking). The timed hierarchy in mem/hierarchy.hh drives these.
 */

#ifndef S64V_MEM_CACHE_HH
#define S64V_MEM_CACHE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/memtypes.hh"

namespace s64v
{

namespace obs { class ChromeTraceWriter; }
namespace ckpt { class SnapshotWriter; class SnapshotReader; }

/** Outcome of inserting a line: what (if anything) was evicted. */
struct Eviction
{
    bool valid = false;
    bool dirty = false;
    Addr lineAddr = 0;
};

/**
 * Pure tag array with true-LRU replacement. Addresses are full byte
 * addresses; the array works at line granularity.
 */
class CacheArray
{
  public:
    explicit CacheArray(const CacheParams &params);

    /** @return true and update LRU if @p addr is present. */
    bool access(Addr addr);

    /** @return true if present, without disturbing LRU. */
    bool probe(Addr addr) const;

    /** Insert the line containing @p addr; returns the victim. */
    Eviction insert(Addr addr, bool dirty = false,
                    bool prefetched = false);

    /** Mark the line dirty; @return false if the line is absent. */
    bool setDirty(Addr addr);

    /** @return true if present and dirty. */
    bool isDirty(Addr addr) const;

    /**
     * Test-and-clear the prefetched bit; @return true if the line was
     * present with the bit set (i.e. a useful prefetch).
     */
    bool consumePrefetched(Addr addr);

    /** Remove the line if present. @return true if it was dirty. */
    bool invalidate(Addr addr);

    /** Drop every line. */
    void flush();

    unsigned numSets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }
    /** Ways usable after RAS degradation. */
    unsigned usableWays() const { return usableWays_; }

    /** Count of valid lines (for tests). */
    std::size_t validLines() const;

    /**
     * Invoke @p fn(lineAddr, dirty) for every valid line. Used by the
     * invariant auditor to cross-check coherence state; the traversal
     * does not disturb LRU.
     */
    void forEachValidLine(
        const std::function<void(Addr, bool)> &fn) const;

    /** Serialize tags/LRU (checkpoint/restore). */
    void saveState(ckpt::SnapshotWriter &w) const;
    void restoreState(ckpt::SnapshotReader &r);

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
        std::uint64_t lru = 0;
    };

    unsigned setIndex(Addr addr) const;
    Addr lineTag(Addr addr) const;
    Line *find(Addr addr);
    const Line *find(Addr addr) const;

    unsigned numSets_;
    unsigned assoc_;
    unsigned usableWays_;
    std::uint64_t lruTick_ = 0;
    std::vector<Line> lines_; ///< numSets_ * assoc_, set-major.
};

/**
 * Timed non-blocking cache: tag array + MSHR tracking of in-flight
 * line fills + statistics. The surrounding hierarchy decides where
 * misses are serviced; TimedCache handles tags, merging, and
 * structural MSHR limits.
 */
class TimedCache
{
  public:
    TimedCache(const CacheParams &params, stats::Group *parent);

    const CacheParams &params() const { return params_; }
    CacheArray &array() { return array_; }
    const CacheArray &array() const { return array_; }

    /**
     * Tag lookup for a demand access at @p cycle.
     * Hit: data ready at cycle + totalLatency().
     * In-flight miss (MSHR merge): ready when the fill lands.
     * New miss: caller must service it and call fill(); the returned
     * ready is the earliest cycle the downstream request can start
     * (after MSHR availability and the tag-probe latency).
     */
    struct LookupResult
    {
        bool hit = false;
        bool merged = false;  ///< matched an in-flight fill.
        Cycle ready = 0;
    };
    LookupResult lookup(Addr addr, bool is_write, Cycle cycle);

    /**
     * Record the completion of a miss: install the line and register
     * the fill time in the MSHR so later accesses merge correctly.
     * @return eviction information for writeback handling.
     */
    Eviction fill(Addr addr, Cycle ready, bool dirty,
                  bool prefetched = false);

    /** Earliest cycle an MSHR frees up, given the current set. */
    Cycle mshrAvailable(Cycle cycle);

    /**
     * Record miss-fill spans into @p writer (one track per cache,
     * named after the stat path). Pass nullptr to detach.
     */
    void attachTrace(obs::ChromeTraceWriter *writer);

    /** @return true if a fill for this line is still in flight. */
    bool pending(Addr addr, Cycle cycle);

    /** Fills still in flight as of @p cycle (auditor/crash report). */
    std::size_t pendingFillCount(Cycle cycle);

    /**
     * Earliest completion among fills still in flight at @p cycle, or
     * kCycleNever when none. The watchdog's event probe uses this to
     * tell a long-latency stall from a true deadlock.
     */
    Cycle earliestPendingFill(Cycle cycle);

    /**
     * Side-effect-free variant of earliestPendingFill() for the
     * skip-ahead kernel's memory bound: min fill completion > @p now,
     * without expiring MSHRs (the skip decision must not mutate
     * state).
     */
    Cycle nextPendingFill(Cycle now) const;

    /**
     * Misses recorded by lookup() whose fill() never arrived. The
     * hierarchy services every miss synchronously, so any nonzero
     * value at drain is a leak.
     */
    std::size_t unpairedMisses() const { return missStart_.size(); }

    /** Count a writeback leaving this cache. */
    void noteWriteback() { ++writebacks_; }
    void notePrefetchIssued() { ++prefetchesIssued_; }
    void notePrefetchUseful() { ++prefetchesUseful_; }
    void noteDemandMiss() { ++demandMisses_; }
    void noteDemandAccess() { ++demandAccesses_; }
    void noteInvalidation() { ++invalidations_; }

    /** Correctable errors observed so far. */
    std::uint64_t correctedErrors() const
    {
        return errors_.correctedErrors();
    }

    /** Stats accessors used by experiments. @{ */
    std::uint64_t accesses() const { return accesses_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t demandAccessCount() const
    {
        return demandAccesses_.value();
    }
    std::uint64_t demandMissCount() const
    {
        return demandMisses_.value();
    }
    std::uint64_t prefetchIssuedCount() const
    {
        return prefetchesIssued_.value();
    }
    std::uint64_t prefetchUsefulCount() const
    {
        return prefetchesUseful_.value();
    }
    std::uint64_t writebackCount() const
    {
        return writebacks_.value();
    }
    std::uint64_t invalidationCount() const
    {
        return invalidations_.value();
    }
    double missRatio() const;
    double demandMissRatio() const;
    /** @} */

    /**
     * Serialize tags + MSHRs + error-process position (stats travel
     * separately with the whole tree; see stats::Group::saveState).
     */
    void saveState(ckpt::SnapshotWriter &w) const;
    void restoreState(ckpt::SnapshotReader &r);

  private:
    void expireMshrs(Cycle cycle);

    CacheParams params_;
    CacheArray array_;
    std::map<Addr, Cycle> inflight_; ///< line addr -> fill-done cycle.
    /** Line addr -> cycle its (new) miss was discovered. */
    std::map<Addr, Cycle> missStart_;

    obs::ChromeTraceWriter *trace_ = nullptr;
    unsigned traceTid_ = 0;

    stats::Group statGroup_;
    ErrorProcess errors_;
    stats::Scalar &accesses_;
    stats::Scalar &misses_;
    stats::Scalar &mshrMerges_;
    stats::Scalar &mshrFullStalls_;
    stats::Scalar &writebacks_;
    stats::Scalar &prefetchesIssued_;
    stats::Scalar &prefetchesUseful_;
    stats::Scalar &demandAccesses_;
    stats::Scalar &demandMisses_;
    stats::Scalar &invalidations_;
    stats::Histogram &mshrOccupancy_;
    stats::Distribution &mshrResidency_;
};

} // namespace s64v

#endif // S64V_MEM_CACHE_HH
