#include "mem/coherence.hh"

namespace s64v
{

CoherenceController::CoherenceController(const SnoopParams &params,
                                         stats::Group *parent)
    : params_(params), statGroup_("coherence", parent),
      snoops_(statGroup_.scalar("snoops", "read snoops issued")),
      dirtySupplies_(statGroup_.scalar("dirty_supplies",
                                       "L2-to-L2 dirty-line "
                                       "transfers")),
      sharedHits_(statGroup_.scalar("shared_hits",
                                    "snoops finding clean copies")),
      invalidationsSent_(statGroup_.scalar("invalidations",
                                           "invalidation broadcasts")),
      backInvalidations_(statGroup_.scalar("back_invalidations",
                                           "L1 lines removed for "
                                           "inclusion"))
{
}

void
CoherenceController::addCluster(const CacheCluster &cluster)
{
    clusters_.push_back(cluster);
}

SnoopOutcome
CoherenceController::snoopRead(CpuId requester, Addr addr)
{
    ++snoops_;
    SnoopOutcome outcome = SnoopOutcome::Miss;
    for (CpuId c = 0; c < clusters_.size(); ++c) {
        if (c == requester)
            continue;
        TimedCache *l2 = clusters_[c].l2;
        if (!l2->array().probe(addr))
            continue;
        if (l2->array().isDirty(addr)) {
            // Owner supplies the line and keeps a clean copy; memory
            // is updated in the same transaction.
            l2->array().insert(addr, /*dirty=*/false);
            ++dirtySupplies_;
            return SnoopOutcome::DirtySupply;
        }
        outcome = SnoopOutcome::SharedClean;
    }
    if (outcome == SnoopOutcome::SharedClean)
        ++sharedHits_;
    return outcome;
}

bool
CoherenceController::invalidateOthers(CpuId requester, Addr addr)
{
    ++invalidationsSent_;
    bool dirty_supply = false;
    for (CpuId c = 0; c < clusters_.size(); ++c) {
        if (c == requester)
            continue;
        TimedCache *l2 = clusters_[c].l2;
        if (!l2->array().probe(addr))
            continue;
        if (l2->array().invalidate(addr))
            dirty_supply = true;
        l2->noteInvalidation();
        backInvalidate(c, addr);
    }
    if (dirty_supply)
        ++dirtySupplies_;
    return dirty_supply;
}

bool
CoherenceController::othersHold(CpuId requester, Addr addr) const
{
    for (CpuId c = 0; c < clusters_.size(); ++c) {
        if (c != requester && clusters_[c].l2->array().probe(addr))
            return true;
    }
    return false;
}

void
CoherenceController::backInvalidate(CpuId cpu, Addr addr)
{
    CacheCluster &cluster = clusters_[cpu];
    if (cluster.l1i->array().invalidate(addr))
        ++backInvalidations_;
    // A dirty L1D line above a lost L2 line is dropped; the L2-to-L2
    // supply path already moved the authoritative data.
    if (cluster.l1d->array().invalidate(addr))
        ++backInvalidations_;
}

} // namespace s64v
