#include "mem/coherence.hh"

namespace s64v
{

CoherenceController::CoherenceController(const SnoopParams &params,
                                         stats::Group *parent)
    : params_(params), statGroup_("coherence", parent),
      snoops_(statGroup_.scalar("snoops", "read snoops issued")),
      dirtySupplies_(statGroup_.scalar("dirty_supplies",
                                       "L2-to-L2 dirty-line "
                                       "transfers")),
      sharedHits_(statGroup_.scalar("shared_hits",
                                    "snoops finding clean copies")),
      invalidationsSent_(statGroup_.scalar("invalidations",
                                           "invalidation broadcasts")),
      backInvalidations_(statGroup_.scalar("back_invalidations",
                                           "L1 lines removed for "
                                           "inclusion"))
{
}

void
CoherenceController::addCluster(const CacheCluster &cluster)
{
    clusters_.push_back(cluster);
}

SnoopOutcome
CoherenceController::snoopRead(CpuId requester, Addr addr)
{
    ++snoops_;
    SnoopOutcome outcome = SnoopOutcome::Miss;
    for (CpuId c = 0; c < clusters_.size(); ++c) {
        if (c == requester)
            continue;
        TimedCache *l2 = clusters_[c].l2;
        if (!l2->array().probe(addr))
            continue;
        // The authoritative dirty copy may still sit in the owner's
        // L1D (write hits dirty only the L1). The snoop probes both
        // levels; missing the L1D state here would hand the requester
        // a stale SharedClean and later let a dirty copy-back create
        // a second owner.
        TimedCache *l1d = clusters_[c].l1d;
        const bool l1_dirty = l1d->array().isDirty(addr);
        if (l2->array().isDirty(addr) || l1_dirty) {
            // Owner supplies the line and keeps a clean copy; memory
            // is updated in the same transaction.
            l2->array().insert(addr, /*dirty=*/false);
            if (l1_dirty)
                l1d->array().insert(addr, /*dirty=*/false);
            ++dirtySupplies_;
            return SnoopOutcome::DirtySupply;
        }
        outcome = SnoopOutcome::SharedClean;
    }
    if (outcome == SnoopOutcome::SharedClean)
        ++sharedHits_;
    return outcome;
}

bool
CoherenceController::invalidateOthers(CpuId requester, Addr addr)
{
    const std::uint64_t broadcast = invalidationsSent_.value();
    ++invalidationsSent_;
    if (broadcast == lostInvalidateIndex_) {
        // Injected fault: the broadcast goes out on the wire (counted
        // above) but no remote controller acts on it. Stale sharers
        // survive alongside the requester's soon-to-be-dirty copy —
        // exactly the state the invariant auditor must flag.
        return false;
    }
    bool dirty_supply = false;
    for (CpuId c = 0; c < clusters_.size(); ++c) {
        if (c == requester)
            continue;
        TimedCache *l2 = clusters_[c].l2;
        if (!l2->array().probe(addr))
            continue;
        // As with snoopRead, the victim's authoritative copy may be a
        // dirty L1D line above a clean L2 line.
        if (clusters_[c].l1d->array().isDirty(addr))
            dirty_supply = true;
        if (l2->array().invalidate(addr))
            dirty_supply = true;
        l2->noteInvalidation();
        backInvalidate(c, addr);
    }
    if (dirty_supply)
        ++dirtySupplies_;
    return dirty_supply;
}

bool
CoherenceController::othersHold(CpuId requester, Addr addr) const
{
    for (CpuId c = 0; c < clusters_.size(); ++c) {
        if (c != requester && clusters_[c].l2->array().probe(addr))
            return true;
    }
    return false;
}

void
CoherenceController::backInvalidate(CpuId cpu, Addr addr)
{
    CacheCluster &cluster = clusters_[cpu];
    if (cluster.l1i->array().invalidate(addr))
        ++backInvalidations_;
    // A dirty L1D line above a lost L2 line is dropped; the L2-to-L2
    // supply path already moved the authoritative data.
    if (cluster.l1d->array().invalidate(addr))
        ++backInvalidations_;
}

} // namespace s64v
