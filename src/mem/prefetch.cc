#include "mem/prefetch.hh"

#include "ckpt/snapshot.hh"
#include "mem/memtypes.hh"

namespace s64v
{

StreamPrefetcher::StreamPrefetcher(const PrefetchParams &params,
                                   const std::string &name,
                                   stats::Group *parent)
    : params_(params), streams_(params.streams),
      candidates_(params.candidates),
      statGroup_(name, parent),
      observations_(statGroup_.scalar("observations",
                                      "demand requests observed")),
      trainings_(statGroup_.scalar("trainings",
                                   "streams reaching confidence")),
      candidatesStat_(statGroup_.scalar("candidates",
                                        "prefetch lines proposed"))
{
}

void
StreamPrefetcher::observe(Addr addr, std::vector<Addr> &out)
{
    if (!params_.enabled || streams_.empty())
        return;
    ++observations_;

    const Addr line = addr / kLineSize;

    // 1. Established streams: advance and fire.
    for (Stream &s : streams_) {
        if (!s.valid)
            continue;
        if (line == s.nextLine || line == s.nextLine + 1) {
            s.nextLine = line + 1;
            s.lru = ++lruTick_;
            if (s.confidence < params_.trainThreshold)
                ++s.confidence;
            for (unsigned d = 0; d < params_.degree; ++d) {
                out.push_back((line + 1 + d) * kLineSize);
                ++candidatesStat_;
            }
            return;
        }
    }

    // 2. Candidate filter: a sequential successor promotes the
    // candidate to a real stream.
    for (Stream &c : candidates_) {
        if (!c.valid)
            continue;
        if (line == c.nextLine || line == c.nextLine + 1) {
            c.valid = false;
            Stream *victim = &streams_[0];
            for (Stream &s : streams_) {
                if (!s.valid) {
                    victim = &s;
                    break;
                }
                if (s.lru < victim->lru)
                    victim = &s;
            }
            victim->valid = true;
            victim->nextLine = line + 1;
            victim->confidence = params_.trainThreshold;
            victim->lru = ++lruTick_;
            ++trainings_;
            for (unsigned d = 0; d < params_.degree; ++d) {
                out.push_back((line + 1 + d) * kLineSize);
                ++candidatesStat_;
            }
            return;
        }
    }

    // 3. Unknown address: allocate a candidate only.
    if (candidates_.empty())
        return;
    Stream *victim = &candidates_[0];
    for (Stream &c : candidates_) {
        if (!c.valid) {
            victim = &c;
            break;
        }
        if (c.lru < victim->lru)
            victim = &c;
    }
    victim->valid = true;
    victim->nextLine = line + 1;
    victim->confidence = 1;
    victim->lru = ++lruTick_;
}


void
StreamPrefetcher::saveTable(ckpt::SnapshotWriter &w,
                            const std::vector<Stream> &t) const
{
    w.putU64(t.size());
    for (const Stream &s : t) {
        w.putU64(s.nextLine);
        w.putU32(s.confidence);
        w.putU64(s.lru);
        w.putBool(s.valid);
    }
}

void
StreamPrefetcher::restoreTable(ckpt::SnapshotReader &r,
                               std::vector<Stream> &t)
{
    r.require(r.getU64() == t.size(),
              "prefetcher table size differs");
    for (Stream &s : t) {
        s.nextLine = r.getU64();
        s.confidence = r.getU32();
        s.lru = r.getU64();
        s.valid = r.getBool();
    }
}

void
StreamPrefetcher::saveState(ckpt::SnapshotWriter &w) const
{
    w.putU64(lruTick_);
    saveTable(w, streams_);
    saveTable(w, candidates_);
}

void
StreamPrefetcher::restoreState(ckpt::SnapshotReader &r)
{
    lruTick_ = r.getU64();
    restoreTable(r, streams_);
    restoreTable(r, candidates_);
}

} // namespace s64v
