#include "mem/cache.hh"

#include <algorithm>
#include <cstdio>

#include "chaos/seeded_bug.hh"
#include "ckpt/snapshot.hh"
#include "common/bitutil.hh"
#include "common/logging.hh"
#include "obs/chrome_trace.hh"

namespace s64v
{

CacheArray::CacheArray(const CacheParams &params)
    : numSets_(params.numSets()), assoc_(params.assoc),
      usableWays_(params.assoc - params.ras.degradedWays)
{
    if (assoc_ == 0)
        fatal("cache '%s': zero associativity", params.name.c_str());
    if (params.ras.degradedWays >= assoc_)
        fatal("cache '%s': cannot degrade %u of %u ways",
              params.name.c_str(), params.ras.degradedWays, assoc_);
    if (params.sizeBytes %
            (static_cast<std::uint64_t>(kLineSize) * assoc_) != 0 ||
        numSets_ == 0 || !isPowerOf2(numSets_)) {
        fatal("cache '%s': size %llu is not a power-of-two set count "
              "of %u-way 64-B lines", params.name.c_str(),
              static_cast<unsigned long long>(params.sizeBytes),
              assoc_);
    }
    lines_.resize(static_cast<std::size_t>(numSets_) * assoc_);
}

unsigned
CacheArray::setIndex(Addr addr) const
{
    return static_cast<unsigned>((addr / kLineSize) & (numSets_ - 1));
}

Addr
CacheArray::lineTag(Addr addr) const
{
    return addr / kLineSize / numSets_;
}

CacheArray::Line *
CacheArray::find(Addr addr)
{
    const unsigned set = setIndex(addr);
    const Addr tag = lineTag(addr);
    Line *base = &lines_[static_cast<std::size_t>(set) * assoc_];
    for (unsigned w = 0; w < usableWays_; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const CacheArray::Line *
CacheArray::find(Addr addr) const
{
    return const_cast<CacheArray *>(this)->find(addr);
}

bool
CacheArray::access(Addr addr)
{
    Line *line = find(addr);
    if (!line)
        return false;
    line->lru = ++lruTick_;
    return true;
}

bool
CacheArray::probe(Addr addr) const
{
    return find(addr) != nullptr;
}

Eviction
CacheArray::insert(Addr addr, bool dirty, bool prefetched)
{
    Eviction ev;
    const unsigned set = setIndex(addr);
    Line *base = &lines_[static_cast<std::size_t>(set) * assoc_];

    // Reuse an existing copy or an invalid (usable) way first.
    Line *victim = nullptr;
    for (unsigned w = 0; w < usableWays_; ++w) {
        if (base[w].valid && base[w].tag == lineTag(addr)) {
            victim = &base[w];
            ev.valid = false;
            break;
        }
        if (!base[w].valid && !victim)
            victim = &base[w];
    }
    if (!victim) {
        victim = base;
        for (unsigned w = 1; w < usableWays_; ++w) {
            if (base[w].lru < victim->lru)
                victim = &base[w];
        }
        ev.valid = true;
        ev.dirty = victim->dirty;
        ev.lineAddr = (victim->tag * numSets_ + set) * kLineSize;
    }

    victim->tag = lineTag(addr);
    victim->valid = true;
    victim->dirty = dirty;
    victim->prefetched = prefetched;
    victim->lru = ++lruTick_;
    return ev;
}

bool
CacheArray::setDirty(Addr addr)
{
    Line *line = find(addr);
    if (!line)
        return false;
    line->dirty = true;
    return true;
}

bool
CacheArray::isDirty(Addr addr) const
{
    const Line *line = find(addr);
    return line && line->dirty;
}

bool
CacheArray::consumePrefetched(Addr addr)
{
    Line *line = find(addr);
    if (!line || !line->prefetched)
        return false;
    line->prefetched = false;
    return true;
}

bool
CacheArray::invalidate(Addr addr)
{
    Line *line = find(addr);
    if (!line)
        return false;
    const bool was_dirty = line->dirty;
    line->valid = false;
    line->dirty = false;
    line->prefetched = false;
    return was_dirty;
}

void
CacheArray::flush()
{
    for (Line &line : lines_) {
        line.valid = false;
        line.dirty = false;
        line.prefetched = false;
    }
}

std::size_t
CacheArray::validLines() const
{
    return static_cast<std::size_t>(
        std::count_if(lines_.begin(), lines_.end(),
                      [](const Line &l) { return l.valid; }));
}

void
CacheArray::forEachValidLine(
    const std::function<void(Addr, bool)> &fn) const
{
    for (unsigned set = 0; set < numSets_; ++set) {
        const Line *base =
            &lines_[static_cast<std::size_t>(set) * assoc_];
        for (unsigned w = 0; w < assoc_; ++w) {
            if (base[w].valid) {
                fn((base[w].tag * numSets_ + set) * kLineSize,
                   base[w].dirty);
            }
        }
    }
}

TimedCache::TimedCache(const CacheParams &params, stats::Group *parent)
    : params_(params), array_(params),
      statGroup_(params.name, parent),
      errors_(params.ras, "ras", &statGroup_),
      accesses_(statGroup_.scalar("accesses", "tag lookups")),
      misses_(statGroup_.scalar("misses", "lookups that missed")),
      mshrMerges_(statGroup_.scalar("mshr_merges",
                                    "misses merged into in-flight "
                                    "fills")),
      mshrFullStalls_(statGroup_.scalar("mshr_full",
                                        "misses delayed by MSHR "
                                        "exhaustion")),
      writebacks_(statGroup_.scalar("writebacks",
                                    "dirty lines written back")),
      prefetchesIssued_(statGroup_.scalar("prefetches",
                                          "prefetch fills issued")),
      prefetchesUseful_(statGroup_.scalar("prefetches_useful",
                                          "prefetched lines hit by "
                                          "demand requests")),
      demandAccesses_(statGroup_.scalar("demand_accesses",
                                        "accesses excluding "
                                        "prefetches")),
      demandMisses_(statGroup_.scalar("demand_misses",
                                      "misses excluding prefetches")),
      invalidations_(statGroup_.scalar("invalidations",
                                       "lines invalidated by "
                                       "coherence")),
      mshrOccupancy_(statGroup_.histogram(
          "mshr_occupancy", "in-flight fills, sampled per lookup",
          0.0, static_cast<double>(params.mshrs) + 1.0,
          params.mshrs + 1)),
      mshrResidency_(statGroup_.distribution(
          "mshr_residency", "cycles a miss held its MSHR"))
{
    statGroup_.formula("miss_ratio", "misses / accesses",
                       [this] { return missRatio(); });
}

void
TimedCache::attachTrace(obs::ChromeTraceWriter *writer)
{
    trace_ = writer;
    if (trace_) {
        traceTid_ = trace_->track(obs::ChromeTraceWriter::kMemPid,
                                  statGroup_.path());
    }
}

void
TimedCache::expireMshrs(Cycle cycle)
{
    for (auto it = inflight_.begin(); it != inflight_.end();) {
        if (it->second <= cycle)
            it = inflight_.erase(it);
        else
            ++it;
    }
}

TimedCache::LookupResult
TimedCache::lookup(Addr addr, bool is_write, Cycle cycle)
{
    ++accesses_;
    LookupResult res;
    const Addr line = alignDown(addr, kLineSize);

    // A line whose fill is still in flight sits in the tag array
    // already (fill() installs eagerly); such accesses merge with the
    // outstanding MSHR rather than hitting.
    expireMshrs(cycle);
    mshrOccupancy_.sample(static_cast<double>(inflight_.size()));
    if (auto it = inflight_.find(line); it != inflight_.end()) {
        ++misses_;
        ++mshrMerges_;
        if (is_write)
            array_.setDirty(addr);
        res.merged = true;
        res.ready = it->second;
        return res;
    }

    const unsigned ecc_penalty = errors_.onAccess();

    if (array_.access(addr)) {
        if (array_.consumePrefetched(addr))
            notePrefetchUseful();
        if (is_write)
            array_.setDirty(addr);
        res.hit = true;
        res.ready = cycle + params_.totalLatency() + ecc_penalty;
        return res;
    }

    ++misses_;
    // Deliberately seeded defect (chaos/seeded_bug.hh): double-count
    // misses in large caches. Stats-only — timing is untouched — so
    // it breaks exactly one metamorphic invariant (growing a cache
    // must not increase its miss count) and nothing else; the chaos
    // campaign must detect it and shrink it to a minimal reproducer.
    if (chaos::seededBugArmed() &&
        params_.sizeBytes >= (std::uint64_t{8} << 20))
        ++misses_;
    // New miss: the downstream request can start after the tag probe
    // (tags are on-chip even for the off-chip L2 design), subject to
    // MSHR availability.
    Cycle start = cycle + params_.latency + ecc_penalty;
    if (inflight_.size() >= params_.mshrs) {
        ++mshrFullStalls_;
        start = std::max(start, mshrAvailable(cycle));
    }
    // Every new miss is normally paired with a fill() that erases the
    // entry; the size guard protects against callers that abandon
    // requests.
    if (missStart_.size() > 4096)
        missStart_.clear();
    missStart_[line] = cycle;
    res.ready = start;
    return res;
}

Eviction
TimedCache::fill(Addr addr, Cycle ready, bool dirty, bool prefetched)
{
    const Addr line = alignDown(addr, kLineSize);
    inflight_[line] = ready;
    if (auto it = missStart_.find(line); it != missStart_.end()) {
        const Cycle start = it->second;
        if (ready > start)
            mshrResidency_.sample(static_cast<double>(ready - start));
        if (trace_) {
            char name[40];
            std::snprintf(name, sizeof(name), "miss 0x%llx",
                          static_cast<unsigned long long>(line));
            trace_->span(obs::ChromeTraceWriter::kMemPid, traceTid_,
                         name, "mem", start, ready);
        }
        missStart_.erase(it);
    }
    return array_.insert(addr, dirty, prefetched);
}

bool
TimedCache::pending(Addr addr, Cycle cycle)
{
    expireMshrs(cycle);
    return inflight_.count(alignDown(addr, kLineSize)) != 0;
}

std::size_t
TimedCache::pendingFillCount(Cycle cycle)
{
    expireMshrs(cycle);
    return inflight_.size();
}

Cycle
TimedCache::earliestPendingFill(Cycle cycle)
{
    expireMshrs(cycle);
    Cycle earliest = kCycleNever;
    for (const auto &[line, ready] : inflight_)
        earliest = std::min(earliest, ready);
    return earliest;
}

Cycle
TimedCache::nextPendingFill(Cycle now) const
{
    Cycle earliest = kCycleNever;
    for (const auto &[line, ready] : inflight_)
        if (ready > now && ready < earliest)
            earliest = ready;
    return earliest;
}

Cycle
TimedCache::mshrAvailable(Cycle cycle)
{
    expireMshrs(cycle);
    if (inflight_.size() < params_.mshrs)
        return cycle;
    Cycle earliest = kCycleNever;
    for (const auto &[line, ready] : inflight_)
        earliest = std::min(earliest, ready);
    return earliest;
}

double
TimedCache::missRatio() const
{
    const std::uint64_t a = accesses_.value();
    return a ? static_cast<double>(misses_.value()) / a : 0.0;
}

double
TimedCache::demandMissRatio() const
{
    const std::uint64_t a = demandAccesses_.value();
    return a ? static_cast<double>(demandMisses_.value()) / a : 0.0;
}

void
CacheArray::saveState(ckpt::SnapshotWriter &w) const
{
    w.putU64(lruTick_);
    w.putU64(lines_.size());
    for (const Line &l : lines_) {
        w.putU64(l.tag);
        w.putU8(static_cast<std::uint8_t>((l.valid ? 1 : 0) |
                                          (l.dirty ? 2 : 0) |
                                          (l.prefetched ? 4 : 0)));
        w.putU64(l.lru);
    }
}

void
CacheArray::restoreState(ckpt::SnapshotReader &r)
{
    lruTick_ = r.getU64();
    r.require(r.getU64() == lines_.size(),
              "cache geometry differs (sets*ways)");
    for (Line &l : lines_) {
        l.tag = r.getU64();
        const std::uint8_t flags = r.getU8();
        l.valid = (flags & 1) != 0;
        l.dirty = (flags & 2) != 0;
        l.prefetched = (flags & 4) != 0;
        l.lru = r.getU64();
    }
}

namespace
{

void
saveAddrCycleMap(ckpt::SnapshotWriter &w,
                 const std::map<Addr, Cycle> &m)
{
    w.putU64(m.size());
    for (const auto &[addr, cycle] : m) {
        w.putU64(addr);
        w.putU64(cycle);
    }
}

void
restoreAddrCycleMap(ckpt::SnapshotReader &r, std::map<Addr, Cycle> &m)
{
    m.clear();
    const std::uint64_t n = r.getU64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr addr = r.getU64();
        m[addr] = r.getU64();
    }
}

} // namespace

void
TimedCache::saveState(ckpt::SnapshotWriter &w) const
{
    array_.saveState(w);
    saveAddrCycleMap(w, inflight_);
    saveAddrCycleMap(w, missStart_);
    w.putU64(errors_.ordinal());
}

void
TimedCache::restoreState(ckpt::SnapshotReader &r)
{
    array_.restoreState(r);
    restoreAddrCycleMap(r, inflight_);
    restoreAddrCycleMap(r, missStart_);
    errors_.setOrdinal(r.getU64());
}

} // namespace s64v
