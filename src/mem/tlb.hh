/**
 * @file
 * Set-associative TLB model. A miss costs a fixed hardware table-walk
 * latency (the walk itself is not traced through the caches; the
 * aggregate cost is what the paper's "tlb" stall component measures).
 */

#ifndef S64V_MEM_TLB_HH
#define S64V_MEM_TLB_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/memtypes.hh"

namespace s64v
{

namespace ckpt { class SnapshotWriter; class SnapshotReader; }

/** Timed TLB with true-LRU sets. */
class Tlb
{
  public:
    Tlb(const TlbParams &params, const std::string &name,
        stats::Group *parent);

    /**
     * Translate @p addr at @p cycle.
     * @return additional latency in cycles (0 on hit).
     */
    unsigned translate(Addr addr, Cycle cycle);

    std::uint64_t accesses() const { return accesses_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    double missRatio() const;

    void flush();

    /** Serialize entries/LRU (checkpoint/restore). */
    void saveState(ckpt::SnapshotWriter &w) const;
    void restoreState(ckpt::SnapshotReader &r);

  private:
    struct Entry
    {
        Addr vpn = 0;
        bool valid = false;
        std::uint64_t lru = 0;
    };

    TlbParams params_;
    unsigned numSets_;
    std::uint64_t lruTick_ = 0;
    std::vector<Entry> entries_;

    stats::Group statGroup_;
    stats::Scalar &accesses_;
    stats::Scalar &misses_;
};

} // namespace s64v

#endif // S64V_MEM_TLB_HH
