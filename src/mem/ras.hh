/**
 * @file
 * RAS (reliability / availability / serviceability) modelling. The
 * paper names RAS as one of the three key SPARC64 V features (§1,
 * §7): the real chip protects its caches with ECC, corrects
 * single-bit errors in line, and can degrade a failing cache way
 * while continuing to run. This module models the *performance* side
 * of those mechanisms: a deterministic error process, the added
 * correction latency, and degraded-way operation.
 */

#ifndef S64V_MEM_RAS_HH
#define S64V_MEM_RAS_HH

#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"

namespace s64v
{

/** RAS configuration for one cache. */
struct RasParams
{
    /**
     * Correctable-error rate, in errors per million accesses.
     * 0 disables error injection (the default: healthy silicon).
     */
    double errorsPerMAccess = 0.0;
    /** Extra cycles for an in-line ECC correction. */
    unsigned correctionLatency = 10;
    /**
     * Number of cache ways disabled by the degradation mechanism
     * (a persistent fault isolated by the service processor).
     */
    unsigned degradedWays = 0;
};

/**
 * Deterministic correctable-error process: given an access ordinal,
 * decides whether this access observes a correctable error. The
 * process is a hash over the ordinal so runs stay reproducible.
 */
class ErrorProcess
{
  public:
    ErrorProcess(const RasParams &params, const std::string &name,
                 stats::Group *parent);

    /**
     * @return the extra latency this access pays (0 almost always;
     * correctionLatency when the deterministic process fires).
     */
    unsigned onAccess();

    std::uint64_t correctedErrors() const
    {
        return corrected_.value();
    }

    bool enabled() const { return threshold_ != 0; }

    /**
     * The process is a pure hash over the access ordinal, so the
     * ordinal is its entire replayable state.
     */
    std::uint64_t ordinal() const { return ordinal_; }
    void setOrdinal(std::uint64_t o) { ordinal_ = o; }

  private:
    RasParams params_;
    std::uint64_t threshold_ = 0; ///< compare against 20-bit hash.
    std::uint64_t ordinal_ = 0;

    stats::Group statGroup_;
    stats::Scalar &corrected_;
};

} // namespace s64v

#endif // S64V_MEM_RAS_HH
