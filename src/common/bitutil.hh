/**
 * @file
 * Small bit-manipulation helpers used by caches, predictors, and the
 * address generators.
 */

#ifndef S64V_COMMON_BITUTIL_HH
#define S64V_COMMON_BITUTIL_HH

#include <bit>
#include <cstdint>

#include "common/types.hh"

namespace s64v
{

/** @return true iff @p v is a (nonzero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return floor(log2(v)); v must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** @return ceil(log2(v)); v must be nonzero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return v <= 1 ? 0 : floorLog2(v - 1) + 1;
}

/** Align @p a down to a multiple of power-of-two @p align. */
constexpr Addr
alignDown(Addr a, std::uint64_t align)
{
    return a & ~(align - 1);
}

/** Align @p a up to a multiple of power-of-two @p align. */
constexpr Addr
alignUp(Addr a, std::uint64_t align)
{
    return (a + align - 1) & ~(align - 1);
}

/** Mix the bits of a 64-bit value (splitmix64 finalizer). */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace s64v

#endif // S64V_COMMON_BITUTIL_HH
