/**
 * @file
 * Small bit-manipulation helpers used by caches, predictors, and the
 * address generators.
 */

#ifndef S64V_COMMON_BITUTIL_HH
#define S64V_COMMON_BITUTIL_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/types.hh"

namespace s64v
{

/** @return true iff @p v is a (nonzero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return floor(log2(v)); v must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** @return ceil(log2(v)); v must be nonzero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return v <= 1 ? 0 : floorLog2(v - 1) + 1;
}

/** Align @p a down to a multiple of power-of-two @p align. */
constexpr Addr
alignDown(Addr a, std::uint64_t align)
{
    return a & ~(align - 1);
}

/** Align @p a up to a multiple of power-of-two @p align. */
constexpr Addr
alignUp(Addr a, std::uint64_t align)
{
    return (a + align - 1) & ~(align - 1);
}

/** Mix the bits of a 64-bit value (splitmix64 finalizer). */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * A dense fixed-size bit set over 64-bit words, built for the
 * struct-of-arrays hot loops: per-cycle scans over ROB/LSQ slots
 * iterate only the set bits via countr_zero instead of branching on
 * every entry. Derived state only — never serialized; owners rebuild
 * their masks from the authoritative per-entry fields on checkpoint
 * restore.
 */
class DenseBits
{
  public:
    DenseBits() = default;
    explicit DenseBits(std::size_t n) { resize(n); }

    /** Resize to @p n bits, clearing every bit. */
    void resize(std::size_t n)
    {
        size_ = n;
        words_.assign((n + 63) / 64, 0);
    }

    std::size_t size() const { return size_; }

    void set(std::size_t i) { words_[i >> 6] |= bit(i); }
    void clear(std::size_t i) { words_[i >> 6] &= ~bit(i); }
    void assign(std::size_t i, bool v)
    {
        if (v)
            set(i);
        else
            clear(i);
    }
    bool test(std::size_t i) const
    {
        return (words_[i >> 6] & bit(i)) != 0;
    }

    /** Clear every bit. */
    void reset()
    {
        for (std::uint64_t &w : words_)
            w = 0;
    }

    bool any() const
    {
        for (std::uint64_t w : words_)
            if (w)
                return true;
        return false;
    }

    std::size_t count() const
    {
        std::size_t n = 0;
        for (std::uint64_t w : words_)
            n += static_cast<std::size_t>(std::popcount(w));
        return n;
    }

    /** Index of the lowest set bit, or -1 when none. */
    std::int64_t findFirst() const
    {
        for (std::size_t wi = 0; wi < words_.size(); ++wi) {
            if (words_[wi]) {
                return static_cast<std::int64_t>(
                    wi * 64 +
                    static_cast<unsigned>(std::countr_zero(words_[wi])));
            }
        }
        return -1;
    }

    /** Index of the lowest clear bit below size(), or -1 when full. */
    std::int64_t findFirstZero() const
    {
        for (std::size_t wi = 0; wi < words_.size(); ++wi) {
            const std::uint64_t inv = ~words_[wi];
            if (inv) {
                const std::size_t i =
                    wi * 64 +
                    static_cast<unsigned>(std::countr_zero(inv));
                return i < size_ ? static_cast<std::int64_t>(i) : -1;
            }
        }
        return -1;
    }

    /**
     * Invoke @p fn(index) for every set bit, ascending. @p fn may
     * return void, or bool where false stops the iteration early.
     */
    template <typename Fn>
    void forEach(Fn &&fn) const
    {
        for (std::size_t wi = 0; wi < words_.size(); ++wi) {
            std::uint64_t bits = words_[wi];
            while (bits) {
                const std::size_t i =
                    wi * 64 +
                    static_cast<unsigned>(std::countr_zero(bits));
                bits &= bits - 1;
                if constexpr (std::is_same_v<
                                  decltype(fn(std::size_t{0})), bool>) {
                    if (!fn(i))
                        return;
                } else {
                    fn(i);
                }
            }
        }
    }

  private:
    static constexpr std::uint64_t bit(std::size_t i)
    {
        return std::uint64_t{1} << (i & 63);
    }

    std::size_t size_ = 0;
    std::vector<std::uint64_t> words_;
};

} // namespace s64v

#endif // S64V_COMMON_BITUTIL_HH
