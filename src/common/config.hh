/**
 * @file
 * String-keyed configuration overrides. The example CLIs and the
 * experiment harness parse "key=value" pairs into a ConfigMap and
 * apply them to parameter structs.
 */

#ifndef S64V_COMMON_CONFIG_HH
#define S64V_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace s64v
{

/**
 * A flat set of key=value overrides with typed accessors. Keys that
 * are read are marked consumed so callers can reject typos.
 */
class ConfigMap
{
  public:
    ConfigMap() = default;

    /** Parse a single "key=value" token; fatal() on malformed input. */
    void parse(const std::string &token);

    /** Parse argv-style tokens, skipping entries without '='. */
    void parseArgs(int argc, const char *const *argv);

    /** Set a value programmatically. */
    void set(const std::string &key, const std::string &value);

    bool has(const std::string &key) const;

    /** Typed lookups returning @p def when the key is absent. */
    std::string getString(const std::string &key,
                          const std::string &def) const;
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    std::uint64_t getU64(const std::string &key,
                         std::uint64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    /** @return keys that were set but never read. */
    std::vector<std::string> unconsumedKeys() const;

  private:
    struct Value
    {
        std::string text;
        mutable bool consumed = false;
    };
    std::map<std::string, Value> values_;
};

} // namespace s64v

#endif // S64V_COMMON_CONFIG_HH
