/**
 * @file
 * Deterministic pseudo-random number generation for workload
 * synthesis. All randomness in the model flows through Rng so that a
 * given seed reproduces a bit-identical trace and simulation.
 */

#ifndef S64V_COMMON_RANDOM_HH
#define S64V_COMMON_RANDOM_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace s64v
{

/**
 * Combine two seeds into one well-mixed 64-bit seed. Used to derive
 * per-component seeds (trace synthesis, fault-storm cycles, sweep
 * shuffling) from one campaign/process seed without the streams
 * becoming correlated: mixSeeds(s, a) and mixSeeds(s, b) differ in
 * about half their bits for any a != b.
 */
std::uint64_t mixSeeds(std::uint64_t a, std::uint64_t b);

/**
 * xoshiro256** generator, seeded via splitmix64. Small, fast, and
 * statistically strong enough for workload synthesis.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed. Any seed (incl. 0) is valid. */
    explicit Rng(std::uint64_t seed = 1);

    /** @return next raw 64-bit value. */
    std::uint64_t next();

    /** @return uniform integer in [0, bound). @p bound must be > 0. */
    std::uint64_t below(std::uint64_t bound);

    /** @return uniform integer in [lo, hi]. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** @return uniform double in [0, 1). */
    double uniform();

    /** @return true with probability @p p (clamped to [0,1]). */
    bool chance(double p);

    /**
     * Sample a geometric distribution with mean @p mean, shifted so
     * the minimum value is 1. Used for basic-block lengths.
     */
    unsigned geometric(double mean);

    /**
     * Sample an index from a discrete distribution given cumulative
     * weights (last element is the total weight).
     */
    std::size_t pickCumulative(const std::vector<double> &cumulative);

    /** Split off an independent child generator. */
    Rng fork();

    /**
     * Raw generator state, for checkpoint/restore. All model
     * randomness is consumed before the timed run begins (trace
     * synthesis), but serializable generators keep the door open for
     * in-run stochastic components (sampling policies, error
     * processes with live draws).
     */
    std::array<std::uint64_t, 4> state() const
    {
        return {s_[0], s_[1], s_[2], s_[3]};
    }
    void setState(const std::array<std::uint64_t, 4> &s)
    {
        for (std::size_t i = 0; i < 4; ++i)
            s_[i] = s[i];
    }

  private:
    std::uint64_t s_[4];
};

/**
 * Precomputed Zipf sampler over ranks [0, n). Used for hot/cold code
 * and data locality in the workload generators.
 */
class ZipfSampler
{
  public:
    /**
     * @param n number of distinct items (> 0).
     * @param skew Zipf exponent; 0 degenerates to uniform.
     */
    ZipfSampler(std::size_t n, double skew);

    /** @return sampled rank in [0, n). Rank 0 is the hottest item. */
    std::size_t sample(Rng &rng) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace s64v

#endif // S64V_COMMON_RANDOM_HH
