/**
 * @file
 * Durable file-writing primitives. Every JSON/JSONL/binary artifact
 * the simulator produces goes through one of these so a run killed at
 * an arbitrary instant never leaves a truncated or interleaved file:
 * atomicWriteFile() stages the content in a temp file in the target
 * directory, fsyncs it, and renames it into place (rename(2) on one
 * filesystem is atomic); AppendFile gives line-granular durability
 * for journals, where each append is written and fsynced as a unit.
 */

#ifndef S64V_COMMON_FILE_UTIL_HH
#define S64V_COMMON_FILE_UTIL_HH

#include <string>
#include <string_view>

namespace s64v
{

/**
 * Write @p data to @p path atomically: temp file + fsync + rename.
 * Readers never observe a partial file — they see either the old
 * content or the new content. @return false (with the reason in
 * @p err if non-null) on any I/O failure; the target is untouched
 * and the temp file removed.
 */
bool atomicWriteFile(const std::string &path, std::string_view data,
                     std::string *err = nullptr);

/**
 * Append-only file handle for JSONL journals: each append() is one
 * write(2) followed by fsync(2), so a crash can truncate at most the
 * line being appended (and only mid-write). Opens with O_APPEND so
 * concurrent appenders from one process interleave at line, not byte,
 * granularity (callers still serialize with a mutex for ordering).
 */
class AppendFile
{
  public:
    AppendFile() = default;
    ~AppendFile();

    AppendFile(const AppendFile &) = delete;
    AppendFile &operator=(const AppendFile &) = delete;

    /** Open (creating if needed) for append. @return success. */
    bool open(const std::string &path, std::string *err = nullptr);

    /** Append @p data and fsync. @return success. */
    bool append(std::string_view data, std::string *err = nullptr);

    bool isOpen() const { return fd_ >= 0; }
    const std::string &path() const { return path_; }

    void close();

  private:
    int fd_ = -1;
    std::string path_;
};

} // namespace s64v

#endif // S64V_COMMON_FILE_UTIL_HH
