/**
 * @file
 * Status and error reporting, following the gem5 fatal/panic split:
 * panic() is for internal model bugs (aborts), fatal() is for user
 * errors such as bad configurations (clean exit), warn()/inform() are
 * advisory.
 */

#ifndef S64V_COMMON_LOGGING_HH
#define S64V_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace s64v
{

/**
 * Verbosity of the advisory channels. Errors (panic/fatal) are always
 * reported; Silent suppresses warn() and inform(), Warn suppresses
 * only inform(). The initial level comes from the S64V_LOG_LEVEL
 * environment variable ("silent"/"0", "warn"/"1", "info"/"2"),
 * defaulting to Info.
 */
enum class LogLevel : int
{
    Silent = 0,
    Warn = 1,
    Info = 2,
};

/** Override the verbosity picked up from S64V_LOG_LEVEL. */
void setLogLevel(LogLevel level);

/** Current verbosity. */
LogLevel logLevel();

/**
 * Abort the process because of an internal model bug. Never returns.
 *
 * @param fmt printf-style format for the diagnostic message.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Exit the process because of a user error (bad parameters, malformed
 * trace file, ...). Never returns.
 *
 * @param fmt printf-style format for the diagnostic message.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning about questionable but survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Redirect warn()/inform() output into a string sink for tests; pass
 * nullptr to restore stderr. Error paths (panic/fatal) are unaffected.
 */
void setLogSink(std::string *sink);

/**
 * Make panic()/fatal() throw std::runtime_error instead of
 * terminating. Used by the test suite to assert on error paths.
 */
void setThrowOnError(bool throw_on_error);

} // namespace s64v

#endif // S64V_COMMON_LOGGING_HH
