/**
 * @file
 * Status and error reporting, following the gem5 fatal/panic split:
 * panic() is for internal model bugs (aborts), fatal() is for user
 * errors such as bad configurations (clean exit), warn()/inform() are
 * advisory.
 *
 * Exit convention (binding for every binary linking this library —
 * tests, bench harnesses, examples):
 *   - fatal()  -> prints "fatal: ..." to stderr and exits with
 *                 status 1 (std::exit, so atexit flushes run). Use for
 *                 user errors: bad flags, malformed trace files,
 *                 impossible configurations.
 *   - panic()  -> prints "panic: ..." to stderr and calls
 *                 std::abort() (SIGABRT, core dump where enabled).
 *                 Use for internal model bugs and violated
 *                 invariants.
 * Both routes first invoke the error hook (setErrorHook) so the
 * crash-report machinery in src/check/ can capture the dying model's
 * state; see check/crash_report.hh.
 */

#ifndef S64V_COMMON_LOGGING_HH
#define S64V_COMMON_LOGGING_HH

#include <cstdarg>
#include <functional>
#include <string>

namespace s64v
{

/**
 * Verbosity of the advisory channels. Errors (panic/fatal) are always
 * reported; Silent suppresses warn() and inform(), Warn suppresses
 * only inform(). The initial level comes from the S64V_LOG_LEVEL
 * environment variable ("silent"/"0", "warn"/"1", "info"/"2"),
 * defaulting to Info.
 */
enum class LogLevel : int
{
    Silent = 0,
    Warn = 1,
    Info = 2,
};

/** Override the verbosity picked up from S64V_LOG_LEVEL. */
void setLogLevel(LogLevel level);

/** Current verbosity. */
LogLevel logLevel();

/**
 * Abort the process because of an internal model bug. Never returns.
 *
 * @param fmt printf-style format for the diagnostic message.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Exit the process because of a user error (bad parameters, malformed
 * trace file, ...). Never returns.
 *
 * @param fmt printf-style format for the diagnostic message.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning about questionable but survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Redirect warn()/inform() output into a string sink for tests; pass
 * nullptr to restore stderr. Error paths (panic/fatal) are unaffected.
 */
void setLogSink(std::string *sink);

/**
 * Make panic()/fatal() throw std::runtime_error instead of
 * terminating. Per-thread: the test suite uses it to assert on error
 * paths, and each sweep worker uses it to contain a dying point to
 * that point.
 */
void setThrowOnError(bool throw_on_error);

/** Whether panic()/fatal() throw on the calling thread. */
bool throwOnErrorEnabled();

/**
 * Callback invoked with ("panic"|"fatal", message) from inside
 * panic()/fatal() before the process terminates (or the test-mode
 * exception is thrown). Recursive errors raised while the hook runs
 * do not re-enter it. Pass an empty function to uninstall.
 */
using ErrorHook =
    std::function<void(const char *kind, const std::string &msg)>;
void setErrorHook(ErrorHook hook);

/**
 * Override the status fatal() exits with (0 restores the default of
 * 1). Process-wide. The fault-injection machinery sets this so runs
 * that die because of a deliberately injected fault are
 * distinguishable from genuine user errors by exit code alone; see
 * check::kInjectedFaultExitCode.
 */
void setFatalExitCode(int code);

/** The status fatal() currently exits with. */
int fatalExitCode();

} // namespace s64v

#endif // S64V_COMMON_LOGGING_HH
