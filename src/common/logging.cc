#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace s64v
{

namespace
{

std::string *logSink = nullptr;
/**
 * Per-thread: a sweep worker converts its own panics into exceptions
 * (per-point error isolation) without changing how every other
 * thread's errors terminate the process.
 */
thread_local bool throwOnError = false;
ErrorHook errorHook;
thread_local bool inErrorHook = false;

/** Run the error hook once, shielding against recursive errors. */
void
runErrorHook(const char *kind, const std::string &msg)
{
    if (!errorHook || inErrorHook)
        return;
    inErrorHook = true;
    try {
        errorHook(kind, msg);
    } catch (...) {
        // A crash reporter that itself dies must not mask the
        // original error.
    }
    inErrorHook = false;
}

LogLevel
levelFromEnv()
{
    const char *env = std::getenv("S64V_LOG_LEVEL");
    if (!env || !*env)
        return LogLevel::Info;
    if (!std::strcmp(env, "0") || !std::strcmp(env, "silent"))
        return LogLevel::Silent;
    if (!std::strcmp(env, "1") || !std::strcmp(env, "warn"))
        return LogLevel::Warn;
    if (!std::strcmp(env, "2") || !std::strcmp(env, "info"))
        return LogLevel::Info;
    std::fprintf(stderr, "warn: unrecognized S64V_LOG_LEVEL '%s'; "
                 "using info\n", env);
    return LogLevel::Info;
}

LogLevel &
currentLevel()
{
    static LogLevel level = levelFromEnv();
    return level;
}

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (n < 0)
        return "<format error>";
    std::string out(static_cast<std::size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
    return out;
}

void
emit(const char *tag, const std::string &msg)
{
    if (logSink) {
        *logSink += tag;
        *logSink += ": ";
        *logSink += msg;
        *logSink += '\n';
    } else {
        std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
    }
}

} // namespace

void
setLogLevel(LogLevel level)
{
    currentLevel() = level;
}

LogLevel
logLevel()
{
    return currentLevel();
}

void
setLogSink(std::string *sink)
{
    logSink = sink;
}

void
setThrowOnError(bool throw_on_error)
{
    throwOnError = throw_on_error;
}

bool
throwOnErrorEnabled()
{
    return throwOnError;
}

void
setErrorHook(ErrorHook hook)
{
    errorHook = std::move(hook);
}

namespace
{
int fatalExitCodeOverride = 0;
} // namespace

void
setFatalExitCode(int code)
{
    fatalExitCodeOverride = code;
}

int
fatalExitCode()
{
    return fatalExitCodeOverride != 0 ? fatalExitCodeOverride : 1;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    runErrorHook("panic", msg);
    if (throwOnError)
        throw std::runtime_error("panic: " + msg);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    runErrorHook("fatal", msg);
    if (throwOnError)
        throw std::runtime_error("fatal: " + msg);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(fatalExitCode());
}

void
warn(const char *fmt, ...)
{
    if (currentLevel() < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("warn", vformat(fmt, ap));
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (currentLevel() < LogLevel::Info)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("info", vformat(fmt, ap));
    va_end(ap);
}

} // namespace s64v
