/**
 * @file
 * Fundamental scalar types shared across the performance model.
 */

#ifndef S64V_COMMON_TYPES_HH
#define S64V_COMMON_TYPES_HH

#include <cstdint>

namespace s64v
{

/** Physical/virtual byte address. The model uses a flat 64-bit space. */
using Addr = std::uint64_t;

/** Absolute CPU cycle count since reset. */
using Cycle = std::uint64_t;

/** Per-core identifier inside an SMP system. */
using CpuId = std::uint32_t;

/** Sentinel for "no cycle scheduled / never". */
constexpr Cycle kCycleNever = ~Cycle{0};

/** Sentinel for "no address". */
constexpr Addr kAddrNone = ~Addr{0};

} // namespace s64v

#endif // S64V_COMMON_TYPES_HH
