#include "common/stats.hh"

#include <cstdio>

#include "common/logging.hh"

namespace s64v::stats
{

Group::Group(std::string name, Group *parent)
    : parent_(parent)
{
    if (parent_) {
        path_ = parent_->path_ + "." + name;
        parent_->children_.push_back(this);
    } else {
        path_ = std::move(name);
    }
}

Scalar &
Group::scalar(const std::string &name, const std::string &desc)
{
    auto [it, inserted] = scalars_.try_emplace(name);
    if (inserted)
        it->second.desc = desc;
    return it->second.counter;
}

void
Group::formula(const std::string &name, const std::string &desc,
               std::function<double()> fn)
{
    formulas_[name] = Formula{desc, std::move(fn)};
}

const Scalar &
Group::lookup(const std::string &name) const
{
    auto it = scalars_.find(name);
    if (it == scalars_.end())
        panic("stat '%s' not found in group '%s'",
              name.c_str(), path_.c_str());
    return it->second.counter;
}

double
Group::evaluate(const std::string &name) const
{
    auto it = formulas_.find(name);
    if (it == formulas_.end())
        panic("formula '%s' not found in group '%s'",
              name.c_str(), path_.c_str());
    return it->second.fn();
}

bool
Group::hasScalar(const std::string &name) const
{
    return scalars_.count(name) != 0;
}

void
Group::resetAll()
{
    for (auto &[name, entry] : scalars_)
        entry.counter.reset();
    for (Group *child : children_)
        child->resetAll();
}

void
Group::dump(std::string &out) const
{
    char line[256];
    for (const auto &[name, entry] : scalars_) {
        std::snprintf(line, sizeof(line), "%-48s %16llu  # %s\n",
                      (path_ + "." + name).c_str(),
                      static_cast<unsigned long long>(
                          entry.counter.value()),
                      entry.desc.c_str());
        out += line;
    }
    for (const auto &[name, f] : formulas_) {
        std::snprintf(line, sizeof(line), "%-48s %16.6f  # %s\n",
                      (path_ + "." + name).c_str(), f.fn(),
                      f.desc.c_str());
        out += line;
    }
    for (const Group *child : children_)
        child->dump(out);
}

} // namespace s64v::stats
