#include "common/stats.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "ckpt/snapshot.hh"
#include "common/logging.hh"

namespace s64v::stats
{

double
Distribution::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Distribution::stddev() const
{
    if (count_ == 0)
        return 0.0;
    const double n = static_cast<double>(count_);
    const double var = sumSq_ / n - (sum_ / n) * (sum_ / n);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = sumSq_ = 0.0;
    min_ = max_ = 0.0;
}

void
Histogram::configure(double lo, double hi, unsigned buckets)
{
    if (buckets == 0 || hi <= lo)
        panic("histogram: bad layout [%g, %g) x %u", lo, hi, buckets);
    lo_ = lo;
    hi_ = hi;
    counts_.assign(buckets, 0);
    dist_.reset();
    underflow_ = overflow_ = 0;
}

void
Histogram::sampleUnconfigured() const
{
    panic("histogram: sample() before configure()");
    std::abort(); // panic may return when throw-on-error is armed.
}

void
Histogram::reset()
{
    dist_.reset();
    counts_.assign(counts_.size(), 0);
    underflow_ = overflow_ = 0;
}

Group::Group(std::string name, Group *parent)
    : parent_(parent)
{
    if (parent_) {
        path_ = parent_->path_ + "." + name;
        parent_->children_.push_back(this);
    } else {
        path_ = std::move(name);
    }
}

std::string
Group::localName() const
{
    const auto dot = path_.rfind('.');
    return dot == std::string::npos ? path_ : path_.substr(dot + 1);
}

Scalar &
Group::scalar(const std::string &name, const std::string &desc)
{
    auto [it, inserted] = scalars_.try_emplace(name);
    if (inserted)
        it->second.desc = desc;
    return it->second.counter;
}

void
Group::formula(const std::string &name, const std::string &desc,
               std::function<double()> fn)
{
    formulas_[name] = Formula{desc, std::move(fn)};
}

Distribution &
Group::distribution(const std::string &name, const std::string &desc)
{
    auto [it, inserted] = distributions_.try_emplace(name);
    if (inserted)
        it->second.desc = desc;
    return it->second.dist;
}

Histogram &
Group::histogram(const std::string &name, const std::string &desc,
                 double lo, double hi, unsigned buckets)
{
    auto [it, inserted] = histograms_.try_emplace(name);
    if (inserted) {
        it->second.desc = desc;
        it->second.hist.configure(lo, hi, buckets);
    }
    return it->second.hist;
}

const Scalar &
Group::lookup(const std::string &name) const
{
    auto it = scalars_.find(name);
    if (it == scalars_.end())
        panic("stat '%s' not found in group '%s'",
              name.c_str(), path_.c_str());
    return it->second.counter;
}

double
Group::evaluate(const std::string &name) const
{
    auto it = formulas_.find(name);
    if (it == formulas_.end())
        panic("formula '%s' not found in group '%s'",
              name.c_str(), path_.c_str());
    return it->second.fn();
}

const Histogram &
Group::lookupHistogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        panic("histogram '%s' not found in group '%s'",
              name.c_str(), path_.c_str());
    return it->second.hist;
}

bool
Group::hasScalar(const std::string &name) const
{
    return scalars_.count(name) != 0;
}

void
Group::resetAll()
{
    for (auto &[name, entry] : scalars_)
        entry.counter.reset();
    for (auto &[name, entry] : distributions_)
        entry.dist.reset();
    for (auto &[name, entry] : histograms_)
        entry.hist.reset();
    for (Group *child : children_)
        child->resetAll();
}

void
Group::dump(std::string &out) const
{
    char line[320];
    for (const auto &[name, entry] : scalars_) {
        std::snprintf(line, sizeof(line), "%-48s %16llu  # %s\n",
                      (path_ + "." + name).c_str(),
                      static_cast<unsigned long long>(
                          entry.counter.value()),
                      entry.desc.c_str());
        out += line;
    }
    for (const auto &[name, f] : formulas_) {
        std::snprintf(line, sizeof(line), "%-48s %16.6f  # %s\n",
                      (path_ + "." + name).c_str(), f.fn(),
                      f.desc.c_str());
        out += line;
    }
    for (const auto &[name, d] : distributions_) {
        std::snprintf(line, sizeof(line),
                      "%-48s count=%llu mean=%.3f stddev=%.3f "
                      "min=%.0f max=%.0f  # %s\n",
                      (path_ + "." + name).c_str(),
                      static_cast<unsigned long long>(d.dist.count()),
                      d.dist.mean(), d.dist.stddev(), d.dist.min(),
                      d.dist.max(), d.desc.c_str());
        out += line;
    }
    for (const auto &[name, h] : histograms_) {
        const Distribution &d = h.hist.dist();
        std::snprintf(line, sizeof(line),
                      "%-48s count=%llu mean=%.3f stddev=%.3f "
                      "min=%.0f max=%.0f  # %s\n",
                      (path_ + "." + name).c_str(),
                      static_cast<unsigned long long>(d.count()),
                      d.mean(), d.stddev(), d.min(), d.max(),
                      h.desc.c_str());
        out += line;
        for (unsigned i = 0; i < h.hist.numBuckets(); ++i) {
            if (h.hist.bucketCount(i) == 0)
                continue;
            const double b_lo = h.hist.lo() + i * h.hist.bucketWidth();
            std::snprintf(line, sizeof(line),
                          "%-48s %16llu  # bucket [%g, %g)\n",
                          (path_ + "." + name + "::" +
                           std::to_string(i)).c_str(),
                          static_cast<unsigned long long>(
                              h.hist.bucketCount(i)),
                          b_lo, b_lo + h.hist.bucketWidth());
            out += line;
        }
    }
    for (const Group *child : children_)
        child->dump(out);
}

void
Group::visit(Visitor &v) const
{
    v.beginGroup(*this);
    for (const auto &[name, entry] : scalars_)
        v.visitScalar(*this, name, entry.desc, entry.counter);
    for (const auto &[name, f] : formulas_)
        v.visitFormula(*this, name, f.desc, f.fn());
    for (const auto &[name, d] : distributions_)
        v.visitDistribution(*this, name, d.desc, d.dist);
    for (const auto &[name, h] : histograms_)
        v.visitHistogram(*this, name, h.desc, h.hist);
    for (const Group *child : children_)
        child->visit(v);
    v.endGroup(*this);
}

void
Distribution::saveState(ckpt::SnapshotWriter &w) const
{
    w.putU64(count_);
    w.putDouble(sum_);
    w.putDouble(sumSq_);
    w.putDouble(min_);
    w.putDouble(max_);
}

void
Distribution::restoreState(ckpt::SnapshotReader &r)
{
    count_ = r.getU64();
    sum_ = r.getDouble();
    sumSq_ = r.getDouble();
    min_ = r.getDouble();
    max_ = r.getDouble();
}

void
Histogram::saveState(ckpt::SnapshotWriter &w) const
{
    dist_.saveState(w);
    w.putU64(counts_.size());
    for (std::uint64_t c : counts_)
        w.putU64(c);
    w.putU64(underflow_);
    w.putU64(overflow_);
}

void
Histogram::restoreState(ckpt::SnapshotReader &r)
{
    dist_.restoreState(r);
    const std::uint64_t buckets = r.getU64();
    r.require(buckets == counts_.size(),
              "histogram bucket count differs");
    for (auto &c : counts_)
        c = r.getU64();
    underflow_ = r.getU64();
    overflow_ = r.getU64();
}

void
Group::saveState(ckpt::SnapshotWriter &w) const
{
    // Local names tag every stat so a restore into a differently
    // configured machine fails loudly instead of shifting counters.
    w.putU32(static_cast<std::uint32_t>(scalars_.size()));
    for (const auto &[name, entry] : scalars_) {
        w.putString(name);
        w.putU64(entry.counter.value());
    }
    w.putU32(static_cast<std::uint32_t>(distributions_.size()));
    for (const auto &[name, d] : distributions_) {
        w.putString(name);
        d.dist.saveState(w);
    }
    w.putU32(static_cast<std::uint32_t>(histograms_.size()));
    for (const auto &[name, h] : histograms_) {
        w.putString(name);
        h.hist.saveState(w);
    }
    w.putU32(static_cast<std::uint32_t>(children_.size()));
    for (const Group *child : children_) {
        w.putString(child->localName());
        child->saveState(w);
    }
}

void
Group::restoreState(ckpt::SnapshotReader &r)
{
    r.require(r.getU32() == scalars_.size(),
              "stat group scalar count differs");
    for (auto &[name, entry] : scalars_) {
        r.require(r.getString() == name, "stat scalar name differs");
        entry.counter.set(r.getU64());
    }
    r.require(r.getU32() == distributions_.size(),
              "stat group distribution count differs");
    for (auto &[name, d] : distributions_) {
        r.require(r.getString() == name,
                  "stat distribution name differs");
        d.dist.restoreState(r);
    }
    r.require(r.getU32() == histograms_.size(),
              "stat group histogram count differs");
    for (auto &[name, h] : histograms_) {
        r.require(r.getString() == name, "stat histogram name differs");
        h.hist.restoreState(r);
    }
    r.require(r.getU32() == children_.size(),
              "stat group child count differs");
    for (Group *child : children_) {
        r.require(r.getString() == child->localName(),
                  "stat group child name differs");
        child->restoreState(r);
    }
}

} // namespace s64v::stats
