#include "common/config.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace s64v
{

void
ConfigMap::parse(const std::string &token)
{
    auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0)
        fatal("malformed config token '%s' (expected key=value)",
              token.c_str());
    set(token.substr(0, eq), token.substr(eq + 1));
}

void
ConfigMap::parseArgs(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string tok = argv[i];
        if (tok.find('=') != std::string::npos)
            parse(tok);
    }
}

void
ConfigMap::set(const std::string &key, const std::string &value)
{
    values_[key] = Value{value, false};
}

bool
ConfigMap::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
ConfigMap::getString(const std::string &key, const std::string &def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    it->second.consumed = true;
    return it->second.text;
}

std::int64_t
ConfigMap::getInt(const std::string &key, std::int64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    it->second.consumed = true;
    return std::strtoll(it->second.text.c_str(), nullptr, 0);
}

std::uint64_t
ConfigMap::getU64(const std::string &key, std::uint64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    it->second.consumed = true;
    return std::strtoull(it->second.text.c_str(), nullptr, 0);
}

double
ConfigMap::getDouble(const std::string &key, double def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    it->second.consumed = true;
    return std::strtod(it->second.text.c_str(), nullptr);
}

bool
ConfigMap::getBool(const std::string &key, bool def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    it->second.consumed = true;
    const std::string &t = it->second.text;
    return t == "1" || t == "true" || t == "yes" || t == "on";
}

std::vector<std::string>
ConfigMap::unconsumedKeys() const
{
    std::vector<std::string> out;
    for (const auto &[key, value] : values_) {
        if (!value.consumed)
            out.push_back(key);
    }
    return out;
}

} // namespace s64v
