#include "common/file_util.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace s64v
{

namespace
{

void
setErr(std::string *err, const std::string &what)
{
    if (err)
        *err = what + ": " + std::strerror(errno);
}

bool
writeAll(int fd, const char *data, std::size_t len)
{
    while (len > 0) {
        const ssize_t n = ::write(fd, data, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

bool
atomicWriteFile(const std::string &path, std::string_view data,
                std::string *err)
{
    // The temp file must live in the target's directory: rename(2) is
    // only atomic within one filesystem.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        setErr(err, "open " + tmp);
        return false;
    }
    bool ok = writeAll(fd, data.data(), data.size());
    if (ok && ::fsync(fd) != 0)
        ok = false;
    if (!ok)
        setErr(err, "write " + tmp);
    if (::close(fd) != 0 && ok) {
        setErr(err, "close " + tmp);
        ok = false;
    }
    if (ok && ::rename(tmp.c_str(), path.c_str()) != 0) {
        setErr(err, "rename " + tmp + " -> " + path);
        ok = false;
    }
    if (!ok)
        ::unlink(tmp.c_str());
    return ok;
}

AppendFile::~AppendFile()
{
    close();
}

bool
AppendFile::open(const std::string &path, std::string *err)
{
    close();
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) {
        setErr(err, "open " + path);
        return false;
    }
    path_ = path;
    return true;
}

bool
AppendFile::append(std::string_view data, std::string *err)
{
    if (fd_ < 0) {
        if (err)
            *err = "append on closed file";
        return false;
    }
    if (!writeAll(fd_, data.data(), data.size())) {
        setErr(err, "write " + path_);
        return false;
    }
    if (::fsync(fd_) != 0) {
        setErr(err, "fsync " + path_);
        return false;
    }
    return true;
}

void
AppendFile::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    path_.clear();
}

} // namespace s64v
