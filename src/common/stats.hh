/**
 * @file
 * Lightweight statistics package, loosely modelled on gem5's: named
 * scalar counters registered in groups, derived formula values,
 * sampled distributions and bucketed histograms, and a text dump.
 * Every model component owns a StatGroup. Machine-readable output
 * (JSON, interval deltas) is built on the Visitor API by src/obs/.
 */

#ifndef S64V_COMMON_STATS_HH
#define S64V_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace s64v::ckpt
{
class SnapshotWriter;
class SnapshotReader;
} // namespace s64v::ckpt

namespace s64v::stats
{

/** A single named 64-bit event counter. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    /** Overwrite the count (checkpoint restore only). */
    void set(std::uint64_t v) { value_ = v; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Running moments of a sampled quantity: count, min, max, mean and
 * standard deviation, without storing individual samples.
 */
class Distribution
{
  public:
    Distribution() = default;

    /**
     * Record @p n occurrences of the value @p v. Inline: occupancy
     * distributions sample every ticked cycle, so this is one of
     * the hottest leaves of the simulator.
     */
    void sample(double v, std::uint64_t n = 1)
    {
        if (n == 0)
            return;
        if (count_ == 0 || v < min_)
            min_ = v;
        if (count_ == 0 || v > max_)
            max_ = v;
        count_ += n;
        const double dn = static_cast<double>(n);
        sum_ += v * dn;
        sumSq_ += v * v * dn;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const;
    /** Population standard deviation. */
    double stddev() const;

    void reset();

    /** Serialize the running moments (checkpoint/restore). */
    void saveState(ckpt::SnapshotWriter &w) const;
    void restoreState(ckpt::SnapshotReader &r);

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A Distribution plus equal-width bucket counts over [lo, hi).
 * Samples below lo / at or above hi land in the underflow / overflow
 * buckets, so no sample is ever dropped.
 */
class Histogram
{
  public:
    Histogram() = default;

    /** Set the bucket layout; resets any accumulated samples. */
    void configure(double lo, double hi, unsigned buckets);
    bool configured() const { return !counts_.empty(); }

    /**
     * Record @p n occurrences of the value @p v. Inline for the same
     * reason as Distribution::sample — latency histograms fire on
     * every commit.
     */
    void sample(double v, std::uint64_t n = 1)
    {
        if (counts_.empty())
            sampleUnconfigured();
        dist_.sample(v, n);
        if (v < lo_) {
            underflow_ += n;
        } else if (v >= hi_) {
            overflow_ += n;
        } else {
            auto i =
                static_cast<std::size_t>((v - lo_) / bucketWidth());
            if (i >= counts_.size()) // numeric edge at hi_.
                i = counts_.size() - 1;
            counts_[i] += n;
        }
    }

    const Distribution &dist() const { return dist_; }
    double lo() const { return lo_; }
    double hi() const { return hi_; }
    unsigned numBuckets() const
    {
        return static_cast<unsigned>(counts_.size());
    }
    double bucketWidth() const
    {
        return counts_.empty()
            ? 0.0
            : (hi_ - lo_) / static_cast<double>(counts_.size());
    }
    std::uint64_t bucketCount(unsigned i) const { return counts_[i]; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    void reset();

    /** Serialize samples; the bucket layout must already match. */
    void saveState(ckpt::SnapshotWriter &w) const;
    void restoreState(ckpt::SnapshotReader &r);

  private:
    [[noreturn]] void sampleUnconfigured() const;

    Distribution dist_;
    double lo_ = 0.0;
    double hi_ = 0.0;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
};

class Group;

/**
 * Read-only traversal of a Group tree. Implement the callbacks you
 * care about; visitation order within a group is scalars, formulas,
 * distributions, histograms, then child groups (each map in name
 * order).
 */
class Visitor
{
  public:
    virtual ~Visitor() = default;

    virtual void beginGroup(const Group &g) { (void)g; }
    virtual void endGroup(const Group &g) { (void)g; }
    virtual void visitScalar(const Group &g, const std::string &name,
                             const std::string &desc, const Scalar &s)
    {
        (void)g; (void)name; (void)desc; (void)s;
    }
    virtual void visitFormula(const Group &g, const std::string &name,
                              const std::string &desc, double value)
    {
        (void)g; (void)name; (void)desc; (void)value;
    }
    virtual void visitDistribution(const Group &g,
                                   const std::string &name,
                                   const std::string &desc,
                                   const Distribution &d)
    {
        (void)g; (void)name; (void)desc; (void)d;
    }
    virtual void visitHistogram(const Group &g, const std::string &name,
                                const std::string &desc,
                                const Histogram &h)
    {
        (void)g; (void)name; (void)desc; (void)h;
    }
};

/**
 * A named collection of counters and derived formulas, optionally
 * nested under a parent group ("cpu0.l1d.hits").
 */
class Group
{
  public:
    /**
     * @param name group name; used as a dotted path prefix.
     * @param parent enclosing group, or nullptr for a root group.
     */
    explicit Group(std::string name, Group *parent = nullptr);

    /** Register a counter under @p name with a description. */
    Scalar &scalar(const std::string &name, const std::string &desc);

    /**
     * Register a derived value computed on demand at dump time
     * (e.g. miss ratio = misses / accesses).
     */
    void formula(const std::string &name, const std::string &desc,
                 std::function<double()> fn);

    /** Register a sampled distribution (min/max/mean/stddev). */
    Distribution &distribution(const std::string &name,
                               const std::string &desc);

    /**
     * Register a bucketed histogram over [lo, hi) with @p buckets
     * equal-width buckets (plus underflow/overflow).
     */
    Histogram &histogram(const std::string &name,
                         const std::string &desc, double lo, double hi,
                         unsigned buckets);

    /** Look up a counter by local name; panics if missing. */
    const Scalar &lookup(const std::string &name) const;

    /** Evaluate a formula by local name; panics if missing. */
    double evaluate(const std::string &name) const;

    /** Look up a histogram by local name; panics if missing. */
    const Histogram &lookupHistogram(const std::string &name) const;

    /** @return true if a counter with this local name exists. */
    bool hasScalar(const std::string &name) const;

    /** Reset all counters here and in child groups. */
    void resetAll();

    /** Full dotted path of this group. */
    const std::string &path() const { return path_; }

    /** Local (last path component) name of this group. */
    std::string localName() const;

    /**
     * Append a human-readable dump of this group and all children to
     * @p out, one "path value # desc" line per stat.
     */
    void dump(std::string &out) const;

    /** Walk this group and all children with @p v. */
    void visit(Visitor &v) const;

    /**
     * Serialize every scalar/distribution/histogram in this group and
     * all children, tagged with local names for validation. Formulas
     * are derived and carry no state. Restore requires the identical
     * registration tree (same machine configuration) and rejects a
     * mismatched snapshot through the reader's diagnostics.
     */
    void saveState(ckpt::SnapshotWriter &w) const;
    void restoreState(ckpt::SnapshotReader &r);

  private:
    struct Entry
    {
        std::string desc;
        Scalar counter;
    };
    struct Formula
    {
        std::string desc;
        std::function<double()> fn;
    };
    struct DistEntry
    {
        std::string desc;
        Distribution dist;
    };
    struct HistEntry
    {
        std::string desc;
        Histogram hist;
    };

    std::string path_;
    Group *parent_;
    std::vector<Group *> children_;
    std::map<std::string, Entry> scalars_;
    std::map<std::string, Formula> formulas_;
    std::map<std::string, DistEntry> distributions_;
    std::map<std::string, HistEntry> histograms_;
};

} // namespace s64v::stats

#endif // S64V_COMMON_STATS_HH
