/**
 * @file
 * Lightweight statistics package, loosely modelled on gem5's: named
 * scalar counters registered in groups, derived formula values, and a
 * text dump. Every model component owns a StatGroup.
 */

#ifndef S64V_COMMON_STATS_HH
#define S64V_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace s64v::stats
{

/** A single named 64-bit event counter. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A named collection of counters and derived formulas, optionally
 * nested under a parent group ("cpu0.l1d.hits").
 */
class Group
{
  public:
    /**
     * @param name group name; used as a dotted path prefix.
     * @param parent enclosing group, or nullptr for a root group.
     */
    explicit Group(std::string name, Group *parent = nullptr);

    /** Register a counter under @p name with a description. */
    Scalar &scalar(const std::string &name, const std::string &desc);

    /**
     * Register a derived value computed on demand at dump time
     * (e.g. miss ratio = misses / accesses).
     */
    void formula(const std::string &name, const std::string &desc,
                 std::function<double()> fn);

    /** Look up a counter by local name; panics if missing. */
    const Scalar &lookup(const std::string &name) const;

    /** Evaluate a formula by local name; panics if missing. */
    double evaluate(const std::string &name) const;

    /** @return true if a counter with this local name exists. */
    bool hasScalar(const std::string &name) const;

    /** Reset all counters here and in child groups. */
    void resetAll();

    /** Full dotted path of this group. */
    const std::string &path() const { return path_; }

    /**
     * Append a human-readable dump of this group and all children to
     * @p out, one "path value # desc" line per stat.
     */
    void dump(std::string &out) const;

  private:
    struct Entry
    {
        std::string desc;
        Scalar counter;
    };
    struct Formula
    {
        std::string desc;
        std::function<double()> fn;
    };

    std::string path_;
    Group *parent_;
    std::vector<Group *> children_;
    std::map<std::string, Entry> scalars_;
    std::map<std::string, Formula> formulas_;
};

} // namespace s64v::stats

#endif // S64V_COMMON_STATS_HH
