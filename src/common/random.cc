#include "common/random.hh"

#include <algorithm>
#include <cmath>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace s64v
{

namespace
{

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
mixSeeds(std::uint64_t a, std::uint64_t b)
{
    // splitmix64 finalizer over an asymmetric combination, so
    // mixSeeds(a, b) != mixSeeds(b, a) and neither argument can
    // cancel the other.
    return mix64(mix64(a) ^ (b + 0x9e3779b97f4a7c15ull + (a << 6)));
}

Rng::Rng(std::uint64_t seed)
{
    // splitmix64 expansion; guarantees a nonzero state for any seed.
    std::uint64_t z = seed;
    for (auto &s : s_) {
        z += 0x9e3779b97f4a7c15ull;
        s = mix64(z);
    }
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::below called with zero bound");
    // Rejection-free multiply-shift is fine for workload synthesis.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::range with lo > hi");
    return lo + static_cast<std::int64_t>(
        below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

unsigned
Rng::geometric(double mean)
{
    if (mean <= 1.0)
        return 1;
    // Shifted geometric: value = 1 + Geom(p), E[value] = mean.
    const double p = 1.0 / mean;
    double u = uniform();
    if (u <= 0.0)
        u = 0x1.0p-53;
    const double g = std::floor(std::log(u) / std::log1p(-p));
    // Cap the tail at 20x the mean: protects against pathological
    // samples without biasing the mean the way a fixed cap would.
    return 1 + static_cast<unsigned>(std::min(g, 20.0 * mean));
}

std::size_t
Rng::pickCumulative(const std::vector<double> &cumulative)
{
    if (cumulative.empty())
        panic("pickCumulative on empty distribution");
    const double total = cumulative.back();
    const double x = uniform() * total;
    auto it = std::upper_bound(cumulative.begin(), cumulative.end(), x);
    if (it == cumulative.end())
        --it;
    return static_cast<std::size_t>(it - cumulative.begin());
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xa5a5a5a5deadbeefull);
}

ZipfSampler::ZipfSampler(std::size_t n, double skew)
{
    if (n == 0)
        panic("ZipfSampler with zero population");
    cdf_.resize(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), skew);
        cdf_[i] = sum;
    }
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    const double x = rng.uniform() * cdf_.back();
    auto it = std::upper_bound(cdf_.begin(), cdf_.end(), x);
    if (it == cdf_.end())
        --it;
    return static_cast<std::size_t>(it - cdf_.begin());
}

} // namespace s64v
