/**
 * @file
 * The cycle kernel: the one loop that advances a machine. Components
 * that do work every cycle implement Clocked; observers and checkers
 * that act periodically register probes with a period. The kernel
 * owns cycle bookkeeping, the stop conditions (drain, cycle cap,
 * stop request), and the dispatch order, so System::run() and any
 * future assembly share a single, well-tested loop instead of each
 * special-casing its observers with per-cycle modulo checks.
 */

#ifndef S64V_SIM_CLOCKED_HH
#define S64V_SIM_CLOCKED_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"

namespace s64v
{

/**
 * A component advanced once per simulated cycle. Cores are the
 * canonical implementation; anything that must see every cycle (a
 * DMA engine, an interconnect scheduler) attaches the same way.
 */
class Clocked
{
  public:
    virtual ~Clocked() = default;

    /** Advance one cycle. Only called while !done(). */
    virtual void tick(Cycle cycle) = 0;

    /**
     * @return true when this component has no further work. The
     * kernel stops once every attached component is done.
     */
    virtual bool done() const { return false; }

    /**
     * Component class the self-profiler aggregates tick time under
     * ("core", "dma", ...). Instances of one class share a bucket.
     */
    virtual const char *profileClass() const { return "clocked"; }
};

/**
 * Simulator self-profiling hook (see exp/self_profile.hh for the
 * standard implementation). When attached to a CycleKernel, cycles
 * where sampleCycle() returns true have each component tick and the
 * probe pass wrapped in wall-clock timers — sampled 1-in-N so the
 * instrumented loop stays within a few percent of the plain one.
 */
class TickProfiler
{
  public:
    virtual ~TickProfiler() = default;

    /** @return true when @p cycle's work should be timed. */
    virtual bool sampleCycle(Cycle cycle) = 0;

    /** One component's tick on a sampled cycle took @p ns. */
    virtual void recordTick(const Clocked &component,
                            std::uint64_t ns) = 0;

    /** The whole probe pass on a sampled cycle took @p ns. */
    virtual void recordProbes(std::uint64_t ns) = 0;
};

/**
 * Periodic probe callback. Invoked at its registered cycles, after
 * every Clocked component has ticked; return false to detach (the
 * probe is never called again).
 */
using ProbeFn = std::function<bool(Cycle)>;

/**
 * The cycle loop. Attach components and probes, then run(). Probes
 * fire in registration order, which the kernel guarantees, so
 * ordering-sensitive observers (a warm-up stats reset before a
 * sampler reads deltas) stay deterministic.
 */
class CycleKernel
{
  public:
    /** Attach a per-cycle component (not owned). */
    void attach(Clocked *component);

    /**
     * Attach a self-profiler timing component ticks and probe passes
     * on its sampled cycles (not owned; nullptr detaches). Off by
     * default: the unprofiled loop pays one pointer test per cycle.
     */
    void attachProfiler(TickProfiler *profiler)
    {
        profiler_ = profiler;
    }

    /**
     * Register a probe firing at cycle @p first and every @p period
     * cycles after that. A disabled observer is simply never
     * registered — the loop pays nothing for it.
     */
    void attachProbe(Cycle first, std::uint64_t period, ProbeFn fn);

    /** Why run() returned. */
    enum class Stop
    {
        Drained,     ///< every Clocked component reported done().
        CycleCap,    ///< maxCycles reached (likely a model deadlock).
        Interrupted, ///< check::stopRequested() (SIGINT/SIGTERM).
        Requested,   ///< a probe called requestStop() (checkpoint).
    };

    struct Outcome
    {
        Stop stop = Stop::Drained;
        Cycle cycle = 0; ///< cycle the loop stopped at.
    };

    /**
     * Run until every component drains, a stop is requested, or
     * @p max_cycles is reached. Probes still fire on the final
     * cycle before the loop exits. @p start_cycle is the first cycle
     * simulated — nonzero when resuming from a checkpoint (probe
     * `first` cycles must already be phase-aligned by the caller).
     */
    Outcome run(std::uint64_t max_cycles, Cycle start_cycle = 0);

    /**
     * Ask the loop to stop after the current cycle's probes finish.
     * Callable only from inside a probe or tick; used by the
     * checkpoint probe's --checkpoint-stop mode.
     */
    void requestStop() { stopRequested_ = true; }

    /** Cycle the loop is at (live while running; crash reports). */
    Cycle currentCycle() const { return currentCycle_; }

  private:
    struct ProbeEntry
    {
        Cycle next;
        std::uint64_t period;
        ProbeFn fn;
    };

    std::vector<Clocked *> clocked_;
    std::vector<ProbeEntry> probes_;
    TickProfiler *profiler_ = nullptr;
    Cycle currentCycle_ = 0;
    bool stopRequested_ = false;
};

} // namespace s64v

#endif // S64V_SIM_CLOCKED_HH
