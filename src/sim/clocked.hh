/**
 * @file
 * The cycle kernel: the one loop that advances a machine. Components
 * that do work every cycle implement Clocked; observers and checkers
 * that act periodically register probes with a period. The kernel
 * owns cycle bookkeeping, the stop conditions (drain, cycle cap,
 * stop request), and the dispatch order, so System::run() and any
 * future assembly share a single, well-tested loop instead of each
 * special-casing its observers with per-cycle modulo checks.
 */

#ifndef S64V_SIM_CLOCKED_HH
#define S64V_SIM_CLOCKED_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"

namespace s64v
{

/**
 * A component advanced once per simulated cycle. Cores are the
 * canonical implementation; anything that must see every cycle (a
 * DMA engine, an interconnect scheduler) attaches the same way.
 */
class Clocked
{
  public:
    virtual ~Clocked() = default;

    /** Advance one cycle. Only called while !done(). */
    virtual void tick(Cycle cycle) = 0;

    /**
     * @return true when this component has no further work. The
     * kernel stops once every attached component is done.
     */
    virtual bool done() const { return false; }

    /**
     * Earliest cycle >= @p now at which ticking this component could
     * change machine state or produce a stat mutation that differs
     * from an idle repeat of cycle @p now. The skip-ahead kernel
     * advances directly to the minimum over all components (bounded
     * by probes); every cycle in between is elided and replayed in
     * bulk through elide(). kCycleNever means fully quiescent until
     * an external event. The default — always busy — keeps any
     * component that has not opted in bit-exact under skip-ahead.
     */
    virtual Cycle nextWorkCycle(Cycle now) const { return now; }

    /**
     * Account for @p cycles idle cycles [@p from, @p from + cycles)
     * the kernel skipped. The component must reproduce exactly the
     * stat mutations that @p cycles consecutive idle ticks starting
     * at @p from would have made — machine state itself must not
     * change (nextWorkCycle() guaranteed no state transition could
     * occur in the window).
     */
    virtual void elide(Cycle from, std::uint64_t cycles)
    {
        (void)from;
        (void)cycles;
    }

    /**
     * Component class the self-profiler aggregates tick time under
     * ("core", "dma", ...). Instances of one class share a bucket.
     */
    virtual const char *profileClass() const { return "clocked"; }

    /**
     * Sentinel activityStamp(): this component does not expose a
     * stamp, so the kernel never caches its nextWorkCycle() answers.
     */
    static constexpr std::uint64_t kNoActivityStamp =
        ~std::uint64_t{0};

    /**
     * Monotone counter of state transitions made by this component's
     * ticks, for the kernel's quiescence memoization: while the
     * stamp is unchanged the component's machine state is provably
     * frozen, so a previously computed nextWorkCycle() answer that
     * still lies in the future remains a valid lower bound and the
     * kernel may reuse it without re-asking. Components that cannot
     * guarantee "every state transition bumps the stamp" keep the
     * default — they are simply never memoized.
     */
    virtual std::uint64_t activityStamp() const
    {
        return kNoActivityStamp;
    }
};

/**
 * Simulator self-profiling hook (see exp/self_profile.hh for the
 * standard implementation). When attached to a CycleKernel, cycles
 * where sampleCycle() returns true have each component tick and the
 * probe pass wrapped in wall-clock timers — sampled 1-in-N so the
 * instrumented loop stays within a few percent of the plain one.
 */
class TickProfiler
{
  public:
    virtual ~TickProfiler() = default;

    /** @return true when @p cycle's work should be timed. */
    virtual bool sampleCycle(Cycle cycle) = 0;

    /** One component's tick on a sampled cycle took @p ns. */
    virtual void recordTick(const Clocked &component,
                            std::uint64_t ns) = 0;

    /** The whole probe pass on a sampled cycle took @p ns. */
    virtual void recordProbes(std::uint64_t ns) = 0;

    /**
     * The skip-ahead kernel elided @p cycles idle cycles. Default
     * no-op so profilers that predate skip-ahead keep compiling.
     */
    virtual void recordElided(std::uint64_t cycles) { (void)cycles; }

    /**
     * Flat-dispatch path: one homogeneous tick group of class
     * @p cls ran @p components ticks in @p ns total on a sampled
     * cycle. The per-group loop is timed as a whole (timing each
     * devirtualized call would defeat the flattening), so the
     * profiler receives one aggregate record per group instead of
     * one per component. Default no-op for older profilers.
     */
    virtual void recordGroupTicks(const char *cls,
                                  std::uint64_t components,
                                  std::uint64_t ns)
    {
        (void)cls;
        (void)components;
        (void)ns;
    }
};

/**
 * Periodic probe callback. Invoked at its registered cycles, after
 * every Clocked component has ticked; return false to detach (the
 * probe is never called again).
 */
using ProbeFn = std::function<bool(Cycle)>;

/**
 * The cycle loop. Attach components and probes, then run(). Probes
 * fire in registration order, which the kernel guarantees, so
 * ordering-sensitive observers (a warm-up stats reset before a
 * sampler reads deltas) stay deterministic.
 */
class CycleKernel
{
  public:
    /**
     * One homogeneous tick-group step: advance every live component
     * in [begin, begin + n) one cycle and return how many were live
     * (not done — a component whose idle tick was deferred still
     * counts). Typed instantiations call tick()/done() through
     * qualified names, so the calls devirtualize and inline.
     */
    using GroupTickFn = std::size_t (*)(CycleKernel &k,
                                        std::size_t begin,
                                        std::size_t n, Cycle cycle);

    /** Attach a per-cycle component (not owned). */
    void attach(Clocked *component);

    /**
     * Attach a component by its concrete type: under flat dispatch
     * (setFlatDispatch) consecutive components of one type tick in a
     * single devirtualized loop. @p T must be the object's dynamic
     * type — the qualified calls bypass the vtable. Behaves exactly
     * like attach() when flat dispatch is off.
     */
    template <typename T>
    void attachTyped(T *component)
    {
        attach(component);
        groupFns_.back() = &typedGroupTick<T>;
    }

    /**
     * Attach a self-profiler timing component ticks and probe passes
     * on its sampled cycles (not owned; nullptr detaches). Off by
     * default: the unprofiled loop pays one pointer test per cycle.
     */
    void attachProfiler(TickProfiler *profiler)
    {
        profiler_ = profiler;
    }

    /**
     * Register a probe firing at cycle @p first and every @p period
     * cycles after that. A disabled observer is simply never
     * registered — the loop pays nothing for it. Periodic probes
     * bound the skip: the kernel never skips across a registered
     * firing cycle.
     */
    void attachProbe(Cycle first, std::uint64_t period, ProbeFn fn);

    /**
     * Register a probe invoked at every *visited* cycle (after the
     * components tick), interleaved with periodic probes in
     * registration order; return false to detach. Unlike a period-1
     * periodic probe, a polled probe does not force the kernel to
     * visit every cycle: it runs whenever the kernel does work.
     *
     * @p horizon optionally bounds the skip — it returns the latest
     * cycle the kernel may advance to without consulting the probe
     * (e.g. the watchdog's deadline). Pass nullptr when the probe's
     * decision can only change at cycles the kernel visits anyway
     * (e.g. warm-up: commits only happen at visited cycles).
     *
     * Unlike periodic probes, polled probes run while idle-tick stat
     * replays may still be deferred (the kernel flushes before any
     * periodic probe fires, but not for these): a polled probe must
     * depend only on tick-mutated state such as commit counters, or
     * call flushElides() before touching anything else.
     */
    void attachPolledProbe(ProbeFn fn,
                           std::function<Cycle()> horizon = nullptr);

    /**
     * Register an external skip bound: a function of the prospective
     * skip start returning the earliest cycle an event outside the
     * Clocked components completes (kCycleNever for none). Used for
     * lazily-timed shared state (memory hierarchy) whose completions
     * classify stalls even though nothing ticks it.
     */
    void attachSkipBound(std::function<Cycle(Cycle)> bound);

    /**
     * Enable skip-ahead scheduling: advance directly to
     * min(component next work, next probe, horizons, skip bounds,
     * cycle cap), replaying the elided cycles' stat effects in bulk
     * via Clocked::elide(). Off by default — the plain per-cycle
     * loop is the reference semantics.
     */
    void setSkipAhead(bool on) { skipAhead_ = on; }
    bool skipAhead() const { return skipAhead_; }

    /**
     * Enable the type-partitioned tick schedule: components attached
     * via attachTyped() are grouped into maximal runs of one type
     * (attachment order preserved, so the dispatch order is
     * bit-identical to the virtual fan-out) and each run ticks
     * through a devirtualized loop. Off by default — the virtual
     * per-component loop is the reference semantics.
     */
    void setFlatDispatch(bool on) { flatDispatch_ = on; }
    bool flatDispatch() const { return flatDispatch_; }

    /**
     * Enable quiescence memoization: skipTarget() caches each
     * component's (activityStamp, nextWorkCycle) pair and reuses the
     * cached answer while the stamp is unchanged and the answer
     * still lies at or past the queried cycle. Reuse is always
     * conservative — an unchanged stamp proves the component's state
     * is frozen, under which nextWorkCycle() answers are
     * nondecreasing in the query cycle, so a cached answer can only
     * shorten a skip, never stretch one. With skip-ahead also on,
     * the same memo drives per-component idle-tick deferral: on a
     * visited cycle, a component whose cached answer lies strictly
     * in the future skips its tick entirely and the owed idle-stat
     * replay is batched into one elide() before its next real tick
     * (see PendingElide) — this is what makes SMP runs cheap when
     * one core pins the clock while the others stall. Off by
     * default.
     */
    void setMemoQuiescence(bool on) { memoQuiescence_ = on; }
    bool memoQuiescence() const { return memoQuiescence_; }

    /** Total cycles elided by skip-ahead in the last/current run(). */
    std::uint64_t elidedCycles() const { return elidedCycles_; }

    /**
     * Replay every deferred idle tick now (see deferIdle()). The
     * kernel flushes automatically before a component's real tick,
     * before any periodic probe fires, and on every loop exit; call
     * this from a *polled* probe before reading or mutating
     * elide-replayed stats (the warm-up reset, an emergency
     * checkpoint) — polled probes otherwise run with idle-tick stat
     * replays still pending, which is safe only while they depend on
     * nothing but tick-mutated state (commit counters).
     */
    void flushElides()
    {
        for (std::size_t i = 0; i < pending_.size(); ++i)
            flushOne(i);
    }

    /** Why run() returned. */
    enum class Stop
    {
        Drained,     ///< every Clocked component reported done().
        CycleCap,    ///< maxCycles reached (likely a model deadlock).
        Interrupted, ///< check::stopRequested() (SIGINT/SIGTERM).
        Requested,   ///< a probe called requestStop() (checkpoint).
    };

    struct Outcome
    {
        Stop stop = Stop::Drained;
        Cycle cycle = 0; ///< cycle the loop stopped at.
    };

    /**
     * Run until every component drains, a stop is requested, or
     * @p max_cycles is reached. Probes still fire on the final
     * cycle before the loop exits. @p start_cycle is the first cycle
     * simulated — nonzero when resuming from a checkpoint (probe
     * `first` cycles must already be phase-aligned by the caller).
     */
    Outcome run(std::uint64_t max_cycles, Cycle start_cycle = 0);

    /**
     * Ask the loop to stop after the current cycle's probes finish.
     * Callable only from inside a probe or tick; used by the
     * checkpoint probe's --checkpoint-stop mode.
     */
    void requestStop() { stopRequested_ = true; }

    /** Cycle the loop is at (live while running; crash reports). */
    Cycle currentCycle() const { return currentCycle_; }

  private:
    struct ProbeEntry
    {
        Cycle next;
        std::uint64_t period;
        ProbeFn fn;
        bool polled = false;
        /** Skip bound for polled probes (may be null). */
        std::function<Cycle()> horizon;
    };

    /**
     * Earliest cycle in [@p next, @p max_cycles] the kernel must
     * visit: min over component work, probe firings, polled-probe
     * horizons, and external skip bounds. Non-const: refreshes the
     * quiescence memo entries as it asks.
     */
    Cycle skipTarget(Cycle next, std::uint64_t max_cycles);

    /** Reference group step: virtual tick()/done() per component. */
    static std::size_t genericGroupTick(CycleKernel &k,
                                        std::size_t begin,
                                        std::size_t n, Cycle cycle);

    template <typename T>
    static std::size_t
    typedGroupTick(CycleKernel &k, std::size_t begin, std::size_t n,
                   Cycle cycle)
    {
        std::size_t live = 0;
        for (std::size_t i = begin; i < begin + n; ++i) {
            T *t = static_cast<T *>(k.clocked_[i]);
            if (t->T::done())
                continue;
            ++live;
            if (k.canDefer(i, t->T::activityStamp(), cycle)) {
                k.deferIdle(i, cycle);
            } else {
                if (k.pending_[i].count) {
                    t->T::elide(k.pending_[i].from,
                                k.pending_[i].count);
                    k.pending_[i].count = 0;
                }
                t->T::tick(cycle);
            }
        }
        return live;
    }

    /**
     * Deferred idle-tick replay for one component: while a memo
     * entry proves the component idle at the visited cycle (frozen
     * stamp, cached next work still in the future), its tick is
     * skipped and the owed idle-stat replay accumulates here; one
     * bulk elide() settles the whole span before the component's
     * next real tick. Spans stay contiguous because every simulated
     * cycle lands in exactly one of: a real tick (flushes), a
     * deferred visit (extends), or a whole-system skip (extends).
     */
    struct PendingElide
    {
        Cycle from = 0;
        std::uint64_t count = 0;
    };

    /**
     * May component @p i skip its tick at @p cycle? Only when the
     * memoized contract proves the tick would be an idle repeat: the
     * component exposes a stamp, the stamp is unchanged since the
     * memo was taken (state provably frozen, so the cached answer is
     * still a valid bound), and the cached next-work cycle lies
     * strictly beyond @p cycle. Requires skip-ahead (the memo is
     * refreshed by skipTarget()) and memoization both on.
     */
    bool canDefer(std::size_t i, std::uint64_t stamp,
                  Cycle cycle) const
    {
        return deferIdle_ && stamp != Clocked::kNoActivityStamp &&
            memo_[i].stamp == stamp && memo_[i].answer > cycle;
    }

    void deferIdle(std::size_t i, Cycle cycle)
    {
        PendingElide &p = pending_[i];
        if (!p.count)
            p.from = cycle;
        ++p.count;
    }

    void flushOne(std::size_t i)
    {
        PendingElide &p = pending_[i];
        if (p.count) {
            clocked_[i]->elide(p.from, p.count);
            p.count = 0;
        }
    }

    /** A maximal run of consecutive same-type components. */
    struct TickGroup
    {
        std::size_t begin;
        std::size_t count;
        GroupTickFn fn;
        const char *cls; ///< profile class (first member's).
    };

    /** Cached (stamp, answer) pair for quiescence memoization. */
    struct MemoEntry
    {
        std::uint64_t stamp = Clocked::kNoActivityStamp;
        Cycle answer = 0;
    };

    /** (Re)build the type-partitioned schedule from groupFns_. */
    void buildSchedule();

    std::vector<Clocked *> clocked_;
    /** Per-component group step, parallel to clocked_. */
    std::vector<GroupTickFn> groupFns_;
    std::vector<TickGroup> schedule_;
    std::vector<MemoEntry> memo_;       ///< parallel to clocked_.
    std::vector<PendingElide> pending_; ///< parallel to clocked_.
    std::vector<ProbeEntry> probes_;
    std::vector<std::function<Cycle(Cycle)>> bounds_;
    TickProfiler *profiler_ = nullptr;
    Cycle currentCycle_ = 0;
    std::uint64_t elidedCycles_ = 0;
    bool stopRequested_ = false;
    bool skipAhead_ = false;
    bool flatDispatch_ = false;
    bool memoQuiescence_ = false;
    /** skipAhead_ && memoQuiescence_, latched at run() start. */
    bool deferIdle_ = false;
};

} // namespace s64v

#endif // S64V_SIM_CLOCKED_HH
