/**
 * @file
 * The cycle kernel: the one loop that advances a machine. Components
 * that do work every cycle implement Clocked; observers and checkers
 * that act periodically register probes with a period. The kernel
 * owns cycle bookkeeping, the stop conditions (drain, cycle cap,
 * stop request), and the dispatch order, so System::run() and any
 * future assembly share a single, well-tested loop instead of each
 * special-casing its observers with per-cycle modulo checks.
 */

#ifndef S64V_SIM_CLOCKED_HH
#define S64V_SIM_CLOCKED_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"

namespace s64v
{

/**
 * A component advanced once per simulated cycle. Cores are the
 * canonical implementation; anything that must see every cycle (a
 * DMA engine, an interconnect scheduler) attaches the same way.
 */
class Clocked
{
  public:
    virtual ~Clocked() = default;

    /** Advance one cycle. Only called while !done(). */
    virtual void tick(Cycle cycle) = 0;

    /**
     * @return true when this component has no further work. The
     * kernel stops once every attached component is done.
     */
    virtual bool done() const { return false; }

    /**
     * Earliest cycle >= @p now at which ticking this component could
     * change machine state or produce a stat mutation that differs
     * from an idle repeat of cycle @p now. The skip-ahead kernel
     * advances directly to the minimum over all components (bounded
     * by probes); every cycle in between is elided and replayed in
     * bulk through elide(). kCycleNever means fully quiescent until
     * an external event. The default — always busy — keeps any
     * component that has not opted in bit-exact under skip-ahead.
     */
    virtual Cycle nextWorkCycle(Cycle now) const { return now; }

    /**
     * Account for @p cycles idle cycles [@p from, @p from + cycles)
     * the kernel skipped. The component must reproduce exactly the
     * stat mutations that @p cycles consecutive idle ticks starting
     * at @p from would have made — machine state itself must not
     * change (nextWorkCycle() guaranteed no state transition could
     * occur in the window).
     */
    virtual void elide(Cycle from, std::uint64_t cycles)
    {
        (void)from;
        (void)cycles;
    }

    /**
     * Component class the self-profiler aggregates tick time under
     * ("core", "dma", ...). Instances of one class share a bucket.
     */
    virtual const char *profileClass() const { return "clocked"; }
};

/**
 * Simulator self-profiling hook (see exp/self_profile.hh for the
 * standard implementation). When attached to a CycleKernel, cycles
 * where sampleCycle() returns true have each component tick and the
 * probe pass wrapped in wall-clock timers — sampled 1-in-N so the
 * instrumented loop stays within a few percent of the plain one.
 */
class TickProfiler
{
  public:
    virtual ~TickProfiler() = default;

    /** @return true when @p cycle's work should be timed. */
    virtual bool sampleCycle(Cycle cycle) = 0;

    /** One component's tick on a sampled cycle took @p ns. */
    virtual void recordTick(const Clocked &component,
                            std::uint64_t ns) = 0;

    /** The whole probe pass on a sampled cycle took @p ns. */
    virtual void recordProbes(std::uint64_t ns) = 0;

    /**
     * The skip-ahead kernel elided @p cycles idle cycles. Default
     * no-op so profilers that predate skip-ahead keep compiling.
     */
    virtual void recordElided(std::uint64_t cycles) { (void)cycles; }
};

/**
 * Periodic probe callback. Invoked at its registered cycles, after
 * every Clocked component has ticked; return false to detach (the
 * probe is never called again).
 */
using ProbeFn = std::function<bool(Cycle)>;

/**
 * The cycle loop. Attach components and probes, then run(). Probes
 * fire in registration order, which the kernel guarantees, so
 * ordering-sensitive observers (a warm-up stats reset before a
 * sampler reads deltas) stay deterministic.
 */
class CycleKernel
{
  public:
    /** Attach a per-cycle component (not owned). */
    void attach(Clocked *component);

    /**
     * Attach a self-profiler timing component ticks and probe passes
     * on its sampled cycles (not owned; nullptr detaches). Off by
     * default: the unprofiled loop pays one pointer test per cycle.
     */
    void attachProfiler(TickProfiler *profiler)
    {
        profiler_ = profiler;
    }

    /**
     * Register a probe firing at cycle @p first and every @p period
     * cycles after that. A disabled observer is simply never
     * registered — the loop pays nothing for it. Periodic probes
     * bound the skip: the kernel never skips across a registered
     * firing cycle.
     */
    void attachProbe(Cycle first, std::uint64_t period, ProbeFn fn);

    /**
     * Register a probe invoked at every *visited* cycle (after the
     * components tick), interleaved with periodic probes in
     * registration order; return false to detach. Unlike a period-1
     * periodic probe, a polled probe does not force the kernel to
     * visit every cycle: it runs whenever the kernel does work.
     *
     * @p horizon optionally bounds the skip — it returns the latest
     * cycle the kernel may advance to without consulting the probe
     * (e.g. the watchdog's deadline). Pass nullptr when the probe's
     * decision can only change at cycles the kernel visits anyway
     * (e.g. warm-up: commits only happen at visited cycles).
     */
    void attachPolledProbe(ProbeFn fn,
                           std::function<Cycle()> horizon = nullptr);

    /**
     * Register an external skip bound: a function of the prospective
     * skip start returning the earliest cycle an event outside the
     * Clocked components completes (kCycleNever for none). Used for
     * lazily-timed shared state (memory hierarchy) whose completions
     * classify stalls even though nothing ticks it.
     */
    void attachSkipBound(std::function<Cycle(Cycle)> bound);

    /**
     * Enable skip-ahead scheduling: advance directly to
     * min(component next work, next probe, horizons, skip bounds,
     * cycle cap), replaying the elided cycles' stat effects in bulk
     * via Clocked::elide(). Off by default — the plain per-cycle
     * loop is the reference semantics.
     */
    void setSkipAhead(bool on) { skipAhead_ = on; }
    bool skipAhead() const { return skipAhead_; }

    /** Total cycles elided by skip-ahead in the last/current run(). */
    std::uint64_t elidedCycles() const { return elidedCycles_; }

    /** Why run() returned. */
    enum class Stop
    {
        Drained,     ///< every Clocked component reported done().
        CycleCap,    ///< maxCycles reached (likely a model deadlock).
        Interrupted, ///< check::stopRequested() (SIGINT/SIGTERM).
        Requested,   ///< a probe called requestStop() (checkpoint).
    };

    struct Outcome
    {
        Stop stop = Stop::Drained;
        Cycle cycle = 0; ///< cycle the loop stopped at.
    };

    /**
     * Run until every component drains, a stop is requested, or
     * @p max_cycles is reached. Probes still fire on the final
     * cycle before the loop exits. @p start_cycle is the first cycle
     * simulated — nonzero when resuming from a checkpoint (probe
     * `first` cycles must already be phase-aligned by the caller).
     */
    Outcome run(std::uint64_t max_cycles, Cycle start_cycle = 0);

    /**
     * Ask the loop to stop after the current cycle's probes finish.
     * Callable only from inside a probe or tick; used by the
     * checkpoint probe's --checkpoint-stop mode.
     */
    void requestStop() { stopRequested_ = true; }

    /** Cycle the loop is at (live while running; crash reports). */
    Cycle currentCycle() const { return currentCycle_; }

  private:
    struct ProbeEntry
    {
        Cycle next;
        std::uint64_t period;
        ProbeFn fn;
        bool polled = false;
        /** Skip bound for polled probes (may be null). */
        std::function<Cycle()> horizon;
    };

    /**
     * Earliest cycle in [@p next, @p max_cycles] the kernel must
     * visit: min over component work, probe firings, polled-probe
     * horizons, and external skip bounds.
     */
    Cycle skipTarget(Cycle next, std::uint64_t max_cycles) const;

    std::vector<Clocked *> clocked_;
    std::vector<ProbeEntry> probes_;
    std::vector<std::function<Cycle(Cycle)>> bounds_;
    TickProfiler *profiler_ = nullptr;
    Cycle currentCycle_ = 0;
    std::uint64_t elidedCycles_ = 0;
    bool stopRequested_ = false;
    bool skipAhead_ = false;
};

} // namespace s64v

#endif // S64V_SIM_CLOCKED_HH
