/**
 * @file
 * System assembly: N cores plus the shared memory system, advanced by
 * a cycle-driven loop. This is the executable form of the paper's
 * performance model (UP or SMP depending on numCpus).
 */

#ifndef S64V_SIM_SYSTEM_HH
#define S64V_SIM_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "check/invariants.hh"
#include "check/watchdog.hh"
#include "common/stats.hh"
#include "cpu/core.hh"
#include "mem/hierarchy.hh"
#include "sim/clocked.hh"
#include "trace/trace.hh"

namespace s64v
{

namespace obs
{
class IntervalSampler;
class Heartbeat;
} // namespace obs

/**
 * Checkpoint trigger configured on a run. Inactive unless a path is
 * set (the path alone arms it, so cycle 0 — a snapshot after the very
 * first cycle — is a valid trigger); the snapshot is written after
 * every tick and probe of @ref atCycle has run, so a restored run
 * continues at atCycle + 1 bit-identically.
 */
struct CheckpointParams
{
    Cycle atCycle = 0;      ///< write after this cycle.
    std::string path;       ///< snapshot file; "" disables the trigger.
    bool stopAfter = false; ///< end the run right after writing.
};

/** Whole-machine configuration. */
struct SystemParams
{
    CoreParams core;
    MemParams mem;
    unsigned numCpus = 1;
    std::uint64_t maxCycles = 400'000'000ull; ///< forward-progress cap.
    /**
     * Cache/predictor warm-up: once every core has committed this
     * many instructions, all statistics are reset and the measurement
     * window begins (standard practice for short traces; the paper's
     * traces are sampled from steady state for the same reason).
     */
    std::uint64_t warmupInstrs = 0;
    /**
     * Interval-sampling period in cycles (0 = off). When an
     * IntervalSampler is attached, run() ticks it every this many
     * cycles so per-interval stat deltas land in its JSONL stream.
     */
    std::uint64_t samplePeriod = 0;
    /** Heartbeat-report period in cycles (0 = off). */
    std::uint64_t heartbeatPeriod = 0;
    /**
     * Watchdog threshold: panic when no core commits for this many
     * cycles and no in-flight fill is about to land (0 = disabled).
     * See check::Watchdog.
     */
    std::uint64_t watchdogCycles = check::kDefaultWatchdogCycles;
    /**
     * Skip-ahead scheduling: when every core is quiescent, the cycle
     * kernel jumps straight to the next cycle any component or probe
     * can act, bulk-attributing the elided cycles to the stats the
     * per-cycle loop would have produced. Bit-identical to plain
     * ticking by contract (chaos invariant "skipahead-identity");
     * --no-skip-ahead selects the plain loop.
     */
    bool skipAhead = true;
    /**
     * Type-partitioned tick dispatch: the kernel ticks the cores
     * through a devirtualized homogeneous loop instead of the
     * per-component virtual fan-out. Dispatch order is preserved, so
     * results are bit-identical by construction (asserted by the
     * engine-matrix tests and chaos invariant "soa-identity");
     * --no-flat-dispatch selects the virtual reference loop.
     */
    bool flatDispatch = true;
    /**
     * Quiescence memoization: the kernel caches each core's
     * nextWorkCycle() answer keyed on its monotone activity stamp
     * and re-asks only cores whose stamp moved — the idle cores of
     * an SMP run stop paying the O(window) scan on every visited
     * cycle. Conservative by construction (a cached answer can only
     * shorten a skip); --no-memo-quiescence disables it.
     */
    bool memoQuiescence = true;
    /** Self-check depth; see check::InvariantAuditor. */
    check::CheckLevel checkLevel = check::CheckLevel::EndOfRun;
    /** Mid-run snapshot trigger (see CheckpointParams). */
    CheckpointParams checkpoint;
    /**
     * Watchdog escalation: before the deadlock panic, write an
     * emergency checkpoint to emergencyCheckpointPath so the hung
     * machine state survives the kill and can be dissected offline.
     */
    bool watchdogEscalate = false;
    std::string emergencyCheckpointPath;
};

/** Per-core outcome of a simulation. */
struct CoreResult
{
    std::uint64_t committed = 0;   ///< total, including warm-up.
    std::uint64_t measured = 0;    ///< committed inside the window.
    Cycle lastCommitCycle = 0;     ///< absolute cycle.
    double ipc = 0.0;              ///< measured-window IPC.
};

/** Outcome of a simulation run. */
struct SimResult
{
    Cycle cycles = 0;              ///< measured-window cycles (max).
    std::uint64_t instructions = 0;///< total committed (all cores).
    std::uint64_t measured = 0;    ///< window instructions.
    double ipc = 0.0;              ///< aggregate window throughput.
    /**
     * The run stopped at SystemParams::maxCycles instead of draining
     * — almost always a model deadlock. Surfaced in the stats JSON
     * ("run.hit_cycle_cap") and in crash reports so a capped run is
     * distinguishable from a clean finish after the fact.
     */
    bool hitCycleCap = false;
    /** Run stopped early by SIGINT/SIGTERM (see check/signals.hh). */
    bool interrupted = false;
    /** Run ended at a --checkpoint-stop point (not an error). */
    bool stoppedAtCheckpoint = false;
    Cycle warmupEndCycle = 0;
    /**
     * Cycles the kernel skipped over rather than ticked (0 on the
     * plain path). Host-side diagnostics only — deliberately never
     * exported into the stats JSON, which must stay bit-identical
     * between the two scheduling modes.
     */
    std::uint64_t elidedCycles = 0;
    std::vector<CoreResult> cores;
};

/**
 * Run position carried across a checkpoint: the first cycle the next
 * run() simulates plus the warm-up bookkeeping that would otherwise
 * live in run()-local variables. Serialized as the snapshot's "run"
 * section; a fresh System starts from the zero state.
 */
struct RunContinuation
{
    Cycle nextCycle = 0;     ///< first cycle the next run() simulates.
    bool warmDone = false;   ///< warm-up stats reset already happened.
    Cycle warmupEndCycle = 0;
    /** Per-core commits absorbed by the warm-up reset. */
    std::vector<std::uint64_t> warmupCommitted;
};

/** A runnable machine instance. */
class System
{
  public:
    System(const SystemParams &params,
           const std::string &name = "sim");
    ~System();

    /**
     * Attach @p trace as CPU @p cpu's input. The trace is shared, not
     * copied: N sweep points over the same workload reference one
     * immutable trace (the system keeps it alive for its lifetime).
     */
    void attachTrace(CpuId cpu, std::shared_ptr<const InstrTrace> trace);

    /** Convenience overload: wrap an owned trace and attach it. */
    void attachTrace(CpuId cpu, InstrTrace trace)
    {
        attachTrace(cpu, std::make_shared<const InstrTrace>(
                             std::move(trace)));
    }

    /**
     * Attach an interval sampler ticked every params().samplePeriod
     * cycles during run(). Pass nullptr to detach. The sampler must
     * outlive the run.
     */
    void attachSampler(obs::IntervalSampler *sampler)
    {
        sampler_ = sampler;
    }

    /** Attach a heartbeat ticked every params().heartbeatPeriod. */
    void attachHeartbeat(obs::Heartbeat *heartbeat)
    {
        heartbeat_ = heartbeat;
    }

    /**
     * Attach a simulator self-profiler, forwarded to the cycle kernel
     * run() builds (see TickProfiler). Must outlive the run.
     */
    void attachProfiler(TickProfiler *profiler)
    {
        profiler_ = profiler;
    }

    /** Run to completion (or the cycle cap). */
    SimResult run();

    Core &core(CpuId cpu) { return *cores_[cpu]; }
    MemSystem &mem() { return *mem_; }
    stats::Group &root() { return root_; }
    const SystemParams &params() const { return params_; }

    /** Trace cursor / shared-trace access (checkpoint subsystem). @{ */
    VectorTraceSource *traceSource(CpuId cpu)
    {
        return sources_[cpu].get();
    }
    const InstrTrace *trace(CpuId cpu) const
    {
        return traces_[cpu].get();
    }
    /** @} */

    /** Run position carried across checkpoint/restore. @{ */
    const RunContinuation &continuation() const { return cont_; }
    void setContinuation(const RunContinuation &cont) { cont_ = cont; }
    /** @} */

    /** Cycle the run loop is at (crash reports; live while running). */
    Cycle currentCycle() const
    {
        return kernel_ ? kernel_->currentCycle() : currentCycle_;
    }

    /** True once the run has stopped at the maxCycles cap (live). */
    bool hitCycleCap() const { return hitCycleCap_; }

    /** Full stats dump as text. */
    std::string statsDump() const;

  private:
    std::uint64_t totalCommitted() const;
    /** Warm-up-reset-immune commit total (watchdog food). */
    std::uint64_t totalRawCommitted() const;

    SystemParams params_;
    stats::Group root_;
    std::unique_ptr<MemSystem> mem_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<std::shared_ptr<const InstrTrace>> traces_;
    std::vector<std::unique_ptr<VectorTraceSource>> sources_;
    obs::IntervalSampler *sampler_ = nullptr;
    obs::Heartbeat *heartbeat_ = nullptr;
    TickProfiler *profiler_ = nullptr;
    std::unique_ptr<CycleKernel> kernel_; ///< live during run().
    Cycle currentCycle_ = 0;
    bool hitCycleCap_ = false;
    RunContinuation cont_;
};

} // namespace s64v

#endif // S64V_SIM_SYSTEM_HH
