#include "sim/clocked.hh"

#include "check/signals.hh"
#include "common/logging.hh"

namespace s64v
{

void
CycleKernel::attach(Clocked *component)
{
    if (!component)
        panic("CycleKernel::attach(nullptr)");
    clocked_.push_back(component);
}

void
CycleKernel::attachProbe(Cycle first, std::uint64_t period, ProbeFn fn)
{
    if (period == 0)
        panic("CycleKernel probe needs a nonzero period");
    if (!fn)
        panic("CycleKernel probe needs a callback");
    probes_.push_back(ProbeEntry{first, period, std::move(fn)});
}

CycleKernel::Outcome
CycleKernel::run(std::uint64_t max_cycles)
{
    Cycle cycle = 0;
    for (;;) {
        currentCycle_ = cycle;
        bool all_done = true;
        for (Clocked *c : clocked_) {
            if (!c->done()) {
                c->tick(cycle);
                all_done = false;
            }
        }
        for (ProbeEntry &p : probes_) {
            if (cycle == p.next)
                p.next = p.fn(cycle) ? p.next + p.period : kCycleNever;
        }
        if (all_done)
            return {Stop::Drained, cycle};
        if (check::stopRequested())
            return {Stop::Interrupted, cycle};
        ++cycle;
        if (cycle >= max_cycles) {
            currentCycle_ = cycle;
            return {Stop::CycleCap, cycle};
        }
    }
}

} // namespace s64v
