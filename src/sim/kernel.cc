#include "sim/clocked.hh"

#include <chrono>

#include "check/signals.hh"
#include "common/logging.hh"

namespace s64v
{

namespace
{

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

void
CycleKernel::attach(Clocked *component)
{
    if (!component)
        panic("CycleKernel::attach(nullptr)");
    clocked_.push_back(component);
    groupFns_.push_back(&CycleKernel::genericGroupTick);
}

std::size_t
CycleKernel::genericGroupTick(CycleKernel &k, std::size_t begin,
                              std::size_t n, Cycle cycle)
{
    std::size_t live = 0;
    for (std::size_t i = begin; i < begin + n; ++i) {
        Clocked *c = k.clocked_[i];
        if (c->done())
            continue;
        ++live;
        if (k.canDefer(i, c->activityStamp(), cycle)) {
            k.deferIdle(i, cycle);
        } else {
            k.flushOne(i);
            c->tick(cycle);
        }
    }
    return live;
}

void
CycleKernel::buildSchedule()
{
    schedule_.clear();
    for (std::size_t i = 0; i < clocked_.size(); ++i) {
        // A group must be homogeneous in both the step function and
        // the profile class, so per-group timing attributes to one
        // bucket even for generically attached mixed components.
        const char *cls = clocked_[i]->profileClass();
        if (!schedule_.empty() &&
            schedule_.back().fn == groupFns_[i] &&
            schedule_.back().cls == cls) {
            ++schedule_.back().count;
        } else {
            schedule_.push_back(TickGroup{i, 1, groupFns_[i], cls});
        }
    }
}

void
CycleKernel::attachProbe(Cycle first, std::uint64_t period, ProbeFn fn)
{
    if (period == 0)
        panic("CycleKernel probe needs a nonzero period");
    if (!fn)
        panic("CycleKernel probe needs a callback");
    probes_.push_back(
        ProbeEntry{first, period, std::move(fn), false, nullptr});
}

void
CycleKernel::attachPolledProbe(ProbeFn fn,
                               std::function<Cycle()> horizon)
{
    if (!fn)
        panic("CycleKernel polled probe needs a callback");
    probes_.push_back(ProbeEntry{0, 1, std::move(fn), true,
                                 std::move(horizon)});
}

void
CycleKernel::attachSkipBound(std::function<Cycle(Cycle)> bound)
{
    if (!bound)
        panic("CycleKernel skip bound needs a callback");
    bounds_.push_back(std::move(bound));
}

Cycle
CycleKernel::skipTarget(Cycle next, std::uint64_t max_cycles)
{
    Cycle target = max_cycles;
    bool any_alive = false;
    for (std::size_t i = 0; i < clocked_.size(); ++i) {
        const Clocked *c = clocked_[i];
        if (c->done())
            continue;
        any_alive = true;
        Cycle w;
        if (memoQuiescence_) {
            // Reuse the cached answer while the component's activity
            // stamp is unchanged (state provably frozen) and the
            // answer still lies at or past the queried cycle; both
            // gates together make reuse conservative (see
            // setMemoQuiescence). No early-out here even once the
            // skip is pinned: the refreshed entry doubles as the
            // next cycle's idle-tick deferral proof (canDefer), so
            // every alive component must be brought up to date.
            const std::uint64_t stamp = c->activityStamp();
            MemoEntry &m = memo_[i];
            if (stamp != Clocked::kNoActivityStamp &&
                stamp == m.stamp && m.answer >= next) {
                w = m.answer;
            } else {
                w = c->nextWorkCycle(next);
                m.stamp = stamp;
                m.answer = w;
            }
        } else {
            if (target <= next)
                return next;
            w = c->nextWorkCycle(next);
        }
        if (w < next)
            w = next;
        if (w < target)
            target = w;
    }
    // Every component drained: the very next cycle ends the run as
    // Drained, exactly where the per-cycle loop would end it.
    if (!any_alive)
        return next;
    if (target <= next)
        return next;
    for (const ProbeEntry &p : probes_) {
        if (target <= next)
            return next;
        Cycle h = kCycleNever;
        if (p.polled) {
            if (p.fn && p.horizon)
                h = p.horizon();
        } else if (p.next != kCycleNever) {
            h = p.next;
        }
        if (h < next)
            h = next;
        if (h < target)
            target = h;
    }
    for (const auto &bound : bounds_) {
        if (target <= next)
            return next;
        Cycle h = bound(next);
        if (h < next)
            h = next;
        if (h < target)
            target = h;
    }
    return target;
}

CycleKernel::Outcome
CycleKernel::run(std::uint64_t max_cycles, Cycle start_cycle)
{
    stopRequested_ = false;
    elidedCycles_ = 0;
    buildSchedule();
    memo_.assign(clocked_.size(), MemoEntry{});
    pending_.assign(clocked_.size(), PendingElide{});
    deferIdle_ = skipAhead_ && memoQuiescence_;
    // Periodic probes read (sampler), reset (warm-up boundary via
    // its own flushElides) or serialize (checkpoint) stats, so every
    // deferred idle-tick replay must land before one fires; polled
    // probes run un-flushed per their documented contract.
    const auto flushForProbes = [this](Cycle c) {
        if (!deferIdle_)
            return;
        for (const ProbeEntry &p : probes_) {
            if (!p.polled && p.next == c) {
                flushElides();
                return;
            }
        }
    };
    Cycle cycle = start_cycle;
    for (;;) {
        currentCycle_ = cycle;
        bool all_done = true;
        const bool timed = profiler_ && profiler_->sampleCycle(cycle);
        if (timed) {
            if (flatDispatch_) {
                // Time each homogeneous group as a whole; splitting
                // the timer per component would re-introduce the
                // indirection the flattening removes.
                for (const TickGroup &g : schedule_) {
                    const std::uint64_t t0 = nowNs();
                    const std::size_t live =
                        g.fn(*this, g.begin, g.count, cycle);
                    if (live) {
                        profiler_->recordGroupTicks(g.cls, live,
                                                    nowNs() - t0);
                        all_done = false;
                    }
                }
            } else {
                for (std::size_t i = 0; i < clocked_.size(); ++i) {
                    Clocked *c = clocked_[i];
                    if (c->done())
                        continue;
                    all_done = false;
                    if (canDefer(i, c->activityStamp(), cycle)) {
                        deferIdle(i, cycle);
                        continue;
                    }
                    flushOne(i);
                    const std::uint64_t t0 = nowNs();
                    c->tick(cycle);
                    profiler_->recordTick(*c, nowNs() - t0);
                }
            }
            flushForProbes(cycle);
            const std::uint64_t p0 = nowNs();
            for (ProbeEntry &p : probes_) {
                if (p.polled) {
                    if (p.fn && !p.fn(cycle))
                        p.fn = nullptr;
                } else if (cycle == p.next) {
                    p.next = p.fn(cycle) ? p.next + p.period
                                         : kCycleNever;
                }
            }
            profiler_->recordProbes(nowNs() - p0);
        } else {
            if (flatDispatch_) {
                for (const TickGroup &g : schedule_) {
                    if (g.fn(*this, g.begin, g.count, cycle))
                        all_done = false;
                }
            } else {
                for (std::size_t i = 0; i < clocked_.size(); ++i) {
                    Clocked *c = clocked_[i];
                    if (c->done())
                        continue;
                    all_done = false;
                    if (canDefer(i, c->activityStamp(), cycle)) {
                        deferIdle(i, cycle);
                    } else {
                        flushOne(i);
                        c->tick(cycle);
                    }
                }
            }
            flushForProbes(cycle);
            for (ProbeEntry &p : probes_) {
                if (p.polled) {
                    if (p.fn && !p.fn(cycle))
                        p.fn = nullptr;
                } else if (cycle == p.next) {
                    p.next = p.fn(cycle) ? p.next + p.period
                                         : kCycleNever;
                }
            }
        }
        if (all_done)
            return {Stop::Drained, cycle};
        if (stopRequested_) {
            flushElides();
            return {Stop::Requested, cycle};
        }
        if (check::stopRequested()) {
            flushElides();
            return {Stop::Interrupted, cycle};
        }
        Cycle next = cycle + 1;
        if (skipAhead_ && next < max_cycles) {
            const Cycle target = skipTarget(next, max_cycles);
            if (target > next) {
                const std::uint64_t n = target - next;
                for (std::size_t i = 0; i < clocked_.size(); ++i) {
                    Clocked *c = clocked_[i];
                    if (c->done())
                        continue;
                    // Fold the skipped span into an open deferral
                    // span (they are contiguous by construction) or
                    // open one when the memo proves this component
                    // idle; otherwise replay immediately, as the
                    // reference elision does.
                    PendingElide &p = pending_[i];
                    if (p.count) {
                        p.count += n;
                    } else if (canDefer(i, c->activityStamp(),
                                        next)) {
                        p.from = next;
                        p.count = n;
                    } else {
                        c->elide(next, n);
                    }
                }
                elidedCycles_ += n;
                if (profiler_)
                    profiler_->recordElided(n);
                next = target;
            }
        }
        if (next >= max_cycles) {
            flushElides();
            currentCycle_ = next;
            return {Stop::CycleCap, next};
        }
        cycle = next;
    }
}

} // namespace s64v
