#include "sim/clocked.hh"

#include <chrono>

#include "check/signals.hh"
#include "common/logging.hh"

namespace s64v
{

namespace
{

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

void
CycleKernel::attach(Clocked *component)
{
    if (!component)
        panic("CycleKernel::attach(nullptr)");
    clocked_.push_back(component);
}

void
CycleKernel::attachProbe(Cycle first, std::uint64_t period, ProbeFn fn)
{
    if (period == 0)
        panic("CycleKernel probe needs a nonzero period");
    if (!fn)
        panic("CycleKernel probe needs a callback");
    probes_.push_back(ProbeEntry{first, period, std::move(fn)});
}

CycleKernel::Outcome
CycleKernel::run(std::uint64_t max_cycles, Cycle start_cycle)
{
    stopRequested_ = false;
    Cycle cycle = start_cycle;
    for (;;) {
        currentCycle_ = cycle;
        bool all_done = true;
        const bool timed = profiler_ && profiler_->sampleCycle(cycle);
        if (timed) {
            for (Clocked *c : clocked_) {
                if (!c->done()) {
                    const std::uint64_t t0 = nowNs();
                    c->tick(cycle);
                    profiler_->recordTick(*c, nowNs() - t0);
                    all_done = false;
                }
            }
            const std::uint64_t p0 = nowNs();
            for (ProbeEntry &p : probes_) {
                if (cycle == p.next) {
                    p.next = p.fn(cycle) ? p.next + p.period
                                         : kCycleNever;
                }
            }
            profiler_->recordProbes(nowNs() - p0);
        } else {
            for (Clocked *c : clocked_) {
                if (!c->done()) {
                    c->tick(cycle);
                    all_done = false;
                }
            }
            for (ProbeEntry &p : probes_) {
                if (cycle == p.next) {
                    p.next = p.fn(cycle) ? p.next + p.period
                                         : kCycleNever;
                }
            }
        }
        if (all_done)
            return {Stop::Drained, cycle};
        if (stopRequested_)
            return {Stop::Requested, cycle};
        if (check::stopRequested())
            return {Stop::Interrupted, cycle};
        ++cycle;
        if (cycle >= max_cycles) {
            currentCycle_ = cycle;
            return {Stop::CycleCap, cycle};
        }
    }
}

} // namespace s64v
