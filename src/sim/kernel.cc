#include "sim/clocked.hh"

#include <chrono>

#include "check/signals.hh"
#include "common/logging.hh"

namespace s64v
{

namespace
{

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

void
CycleKernel::attach(Clocked *component)
{
    if (!component)
        panic("CycleKernel::attach(nullptr)");
    clocked_.push_back(component);
}

void
CycleKernel::attachProbe(Cycle first, std::uint64_t period, ProbeFn fn)
{
    if (period == 0)
        panic("CycleKernel probe needs a nonzero period");
    if (!fn)
        panic("CycleKernel probe needs a callback");
    probes_.push_back(
        ProbeEntry{first, period, std::move(fn), false, nullptr});
}

void
CycleKernel::attachPolledProbe(ProbeFn fn,
                               std::function<Cycle()> horizon)
{
    if (!fn)
        panic("CycleKernel polled probe needs a callback");
    probes_.push_back(ProbeEntry{0, 1, std::move(fn), true,
                                 std::move(horizon)});
}

void
CycleKernel::attachSkipBound(std::function<Cycle(Cycle)> bound)
{
    if (!bound)
        panic("CycleKernel skip bound needs a callback");
    bounds_.push_back(std::move(bound));
}

Cycle
CycleKernel::skipTarget(Cycle next, std::uint64_t max_cycles) const
{
    Cycle target = max_cycles;
    bool any_alive = false;
    for (const Clocked *c : clocked_) {
        if (c->done())
            continue;
        any_alive = true;
        if (target <= next)
            return next;
        Cycle w = c->nextWorkCycle(next);
        if (w < next)
            w = next;
        if (w < target)
            target = w;
    }
    // Every component drained: the very next cycle ends the run as
    // Drained, exactly where the per-cycle loop would end it.
    if (!any_alive)
        return next;
    for (const ProbeEntry &p : probes_) {
        if (target <= next)
            return next;
        Cycle h = kCycleNever;
        if (p.polled) {
            if (p.fn && p.horizon)
                h = p.horizon();
        } else if (p.next != kCycleNever) {
            h = p.next;
        }
        if (h < next)
            h = next;
        if (h < target)
            target = h;
    }
    for (const auto &bound : bounds_) {
        if (target <= next)
            return next;
        Cycle h = bound(next);
        if (h < next)
            h = next;
        if (h < target)
            target = h;
    }
    return target;
}

CycleKernel::Outcome
CycleKernel::run(std::uint64_t max_cycles, Cycle start_cycle)
{
    stopRequested_ = false;
    elidedCycles_ = 0;
    Cycle cycle = start_cycle;
    for (;;) {
        currentCycle_ = cycle;
        bool all_done = true;
        const bool timed = profiler_ && profiler_->sampleCycle(cycle);
        if (timed) {
            for (Clocked *c : clocked_) {
                if (!c->done()) {
                    const std::uint64_t t0 = nowNs();
                    c->tick(cycle);
                    profiler_->recordTick(*c, nowNs() - t0);
                    all_done = false;
                }
            }
            const std::uint64_t p0 = nowNs();
            for (ProbeEntry &p : probes_) {
                if (p.polled) {
                    if (p.fn && !p.fn(cycle))
                        p.fn = nullptr;
                } else if (cycle == p.next) {
                    p.next = p.fn(cycle) ? p.next + p.period
                                         : kCycleNever;
                }
            }
            profiler_->recordProbes(nowNs() - p0);
        } else {
            for (Clocked *c : clocked_) {
                if (!c->done()) {
                    c->tick(cycle);
                    all_done = false;
                }
            }
            for (ProbeEntry &p : probes_) {
                if (p.polled) {
                    if (p.fn && !p.fn(cycle))
                        p.fn = nullptr;
                } else if (cycle == p.next) {
                    p.next = p.fn(cycle) ? p.next + p.period
                                         : kCycleNever;
                }
            }
        }
        if (all_done)
            return {Stop::Drained, cycle};
        if (stopRequested_)
            return {Stop::Requested, cycle};
        if (check::stopRequested())
            return {Stop::Interrupted, cycle};
        Cycle next = cycle + 1;
        if (skipAhead_ && next < max_cycles) {
            const Cycle target = skipTarget(next, max_cycles);
            if (target > next) {
                const std::uint64_t n = target - next;
                for (Clocked *c : clocked_) {
                    if (!c->done())
                        c->elide(next, n);
                }
                elidedCycles_ += n;
                if (profiler_)
                    profiler_->recordElided(n);
                next = target;
            }
        }
        if (next >= max_cycles) {
            currentCycle_ = next;
            return {Stop::CycleCap, next};
        }
        cycle = next;
    }
}

} // namespace s64v
