#include "sim/system.hh"

#include <algorithm>

#include "check/crash_report.hh"
#include "check/fault_inject.hh"
#include "check/signals.hh"
#include "common/logging.hh"
#include "obs/heartbeat.hh"
#include "obs/sampler.hh"

namespace s64v
{

System::System(const SystemParams &params, const std::string &name)
    : params_(params), root_(name)
{
    if (params_.numCpus == 0)
        fatal("system needs at least one CPU");
    mem_ = std::make_unique<MemSystem>(params_.mem, params_.numCpus,
                                       &root_);
    traces_.resize(params_.numCpus);
    sources_.resize(params_.numCpus);
    for (unsigned i = 0; i < params_.numCpus; ++i) {
        cores_.push_back(std::make_unique<Core>(params_.core, i,
                                                *mem_, &root_));
    }

    // Arm whatever fault the process-wide plan asks for (see
    // check/fault_inject.hh; TraceCorrupt acts in trace_io instead).
    const check::FaultPlan &fault = check::activeFaultPlan();
    if (fault.active(check::FaultKind::CommitStall)) {
        for (auto &core : cores_)
            core->injectCommitStall(fault.at);
    } else if (fault.active(check::FaultKind::LostGrant)) {
        mem_->bus().injectLostGrant(fault.at);
    } else if (fault.active(check::FaultKind::LostInvalidate)) {
        mem_->coherence().injectLostInvalidate(fault.at);
    }
}

System::~System()
{
    if (check::crashSystem() == this)
        check::setCrashSystem(nullptr);
}

void
System::attachTrace(CpuId cpu, std::shared_ptr<const InstrTrace> trace)
{
    if (cpu >= cores_.size())
        fatal("attachTrace: cpu %u out of range", cpu);
    if (!trace)
        fatal("attachTrace: cpu %u given a null trace", cpu);
    traces_[cpu] = std::move(trace);
    sources_[cpu] =
        std::make_unique<VectorTraceSource>(*traces_[cpu]);
    cores_[cpu]->setTrace(sources_[cpu].get());
}

SimResult
System::run()
{
    for (unsigned i = 0; i < cores_.size(); ++i) {
        if (!sources_[i])
            fatal("cpu %u has no trace attached", i);
    }

    SimResult res;
    std::vector<std::uint64_t> warmup_committed(cores_.size(), 0);
    bool warm_done = params_.warmupInstrs == 0;

    // Self-check machinery: crash reports read live state through the
    // registration; the watchdog distinguishes long-latency stalls
    // from deadlock via the earliest in-flight fill; the auditor
    // cross-checks structural invariants.
    check::setCrashSystem(this);
    check::InvariantAuditor auditor(*this);
    std::unique_ptr<check::Watchdog> watchdog;
    if (params_.watchdogCycles != 0) {
        watchdog =
            std::make_unique<check::Watchdog>(params_.watchdogCycles);
        watchdog->setEventProbe([this](Cycle now) {
            Cycle earliest = kCycleNever;
            for (CpuId c = 0; c < mem_->numCpus(); ++c) {
                earliest = std::min(
                    {earliest, mem_->l1i(c).earliestPendingFill(now),
                     mem_->l1d(c).earliestPendingFill(now),
                     mem_->l2(c).earliestPendingFill(now)});
            }
            return earliest;
        });
    }

    // Assemble the cycle kernel: cores tick every cycle; everything
    // else is a probe with a period, registered in the order the
    // checks must run (watchdog and auditor see the machine before
    // the warm-up reset; the sampler reads deltas after it).
    kernel_ = std::make_unique<CycleKernel>();
    hitCycleCap_ = false;
    if (profiler_)
        kernel_->attachProfiler(profiler_);
    for (auto &core : cores_)
        kernel_->attach(core.get());
    if (watchdog) {
        kernel_->attachProbe(0, 1, [&](Cycle cycle) {
            if (watchdog->tick(cycle, totalRawCommitted()))
                panic("%s", watchdog->diagnosis().c_str());
            return true;
        });
    }
    if (params_.checkLevel == check::CheckLevel::PerCycle) {
        kernel_->attachProbe(0, 1, [&](Cycle cycle) {
            auditor.checkCycle(cycle);
            return true;
        });
    }
    if (!warm_done) {
        kernel_->attachProbe(0, 1, [&](Cycle cycle) {
            for (auto &core : cores_) {
                if (core->committed() < params_.warmupInstrs)
                    return true; // not warm yet; probe again.
            }
            for (std::size_t i = 0; i < cores_.size(); ++i)
                warmup_committed[i] = cores_[i]->committed();
            root_.resetAll();
            res.warmupEndCycle = cycle;
            warm_done = true;
            return false; // measurement window open; detach.
        });
    }
    if (sampler_ && params_.samplePeriod != 0) {
        kernel_->attachProbe(
            params_.samplePeriod, params_.samplePeriod,
            [this](Cycle cycle) {
                sampler_->tick(cycle, totalCommitted());
                return true;
            });
    }
    if (heartbeat_ && params_.heartbeatPeriod != 0) {
        kernel_->attachProbe(
            params_.heartbeatPeriod, params_.heartbeatPeriod,
            [this](Cycle cycle) {
                heartbeat_->beat(cycle, totalCommitted());
                return true;
            });
    }

    const CycleKernel::Outcome out = kernel_->run(params_.maxCycles);
    const Cycle cycle = out.cycle;
    currentCycle_ = cycle;
    kernel_.reset();

    switch (out.stop) {
      case CycleKernel::Stop::Drained:
        break;
      case CycleKernel::Stop::Interrupted:
        warn("stop requested (signal %d); ending the run at cycle "
             "%llu", check::stopSignal(),
             static_cast<unsigned long long>(cycle));
        res.interrupted = true;
        break;
      case CycleKernel::Stop::CycleCap:
        warn("simulation hit the %llu-cycle cap; likely a model "
             "deadlock",
             static_cast<unsigned long long>(params_.maxCycles));
        res.hitCycleCap = true;
        hitCycleCap_ = true;
        break;
    }

    if (params_.checkLevel != check::CheckLevel::Off) {
        if (res.hitCycleCap || res.interrupted) {
            // The machine did not drain; audit only what must hold at
            // any cycle boundary.
            auditor.checkCycle(cycle);
        } else {
            auditor.checkEndOfRun(cycle);
        }
    }

    if (!warm_done) {
        warn("warm-up threshold %llu never reached; measuring the "
             "whole run",
             static_cast<unsigned long long>(params_.warmupInstrs));
    }

    if (sampler_)
        sampler_->finish(cycle, totalCommitted());

    for (std::size_t i = 0; i < cores_.size(); ++i) {
        Core &core = *cores_[i];
        CoreResult cr;
        cr.measured = core.committed(); // stat: reset at warm-up end.
        cr.committed = warmup_committed[i] + cr.measured;
        cr.lastCommitCycle = core.lastCommitCycle();
        const Cycle window = cr.lastCommitCycle > res.warmupEndCycle
            ? cr.lastCommitCycle - res.warmupEndCycle
            : 0;
        cr.ipc = window
            ? static_cast<double>(cr.measured) /
              static_cast<double>(window)
            : 0.0;
        res.instructions += cr.committed;
        res.measured += cr.measured;
        res.cycles = std::max(res.cycles,
                              cr.lastCommitCycle > res.warmupEndCycle
                                  ? cr.lastCommitCycle -
                                        res.warmupEndCycle
                                  : 0);
        res.cores.push_back(cr);
    }
    res.ipc = res.cycles
        ? static_cast<double>(res.measured) /
          static_cast<double>(res.cycles)
        : 0.0;
    return res;
}

std::uint64_t
System::totalCommitted() const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_)
        total += core->committed();
    return total;
}

std::uint64_t
System::totalRawCommitted() const
{
    // The watchdog must not mistake the warm-up stats reset for a
    // hundred-thousand-cycle commit drought, so it watches the raw
    // counters, which are never cleared.
    std::uint64_t total = 0;
    for (const auto &core : cores_)
        total += core->rawCommitted();
    return total;
}

std::string
System::statsDump() const
{
    std::string out;
    root_.dump(out);
    return out;
}

} // namespace s64v
