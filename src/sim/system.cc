#include "sim/system.hh"

#include <algorithm>
#include <cstdlib>

#include "check/crash_report.hh"
#include "check/fault_inject.hh"
#include "check/signals.hh"
#include "ckpt/checkpoint.hh"
#include "common/logging.hh"
#include "obs/heartbeat.hh"
#include "obs/sampler.hh"

namespace s64v
{

namespace
{

/**
 * First firing cycle of a period-@p period probe in a run starting at
 * @p start: the smallest positive multiple of the period that is not
 * in the past, so a resumed run's samples land on the same absolute
 * cycles as the uninterrupted run's.
 */
Cycle
phaseStart(std::uint64_t period, Cycle start)
{
    if (start == 0)
        return period;
    const Cycle aligned = ((start + period - 1) / period) * period;
    return std::max<Cycle>(aligned, period);
}

} // namespace

System::System(const SystemParams &params, const std::string &name)
    : params_(params), root_(name)
{
    if (params_.numCpus == 0)
        fatal("system needs at least one CPU");
    mem_ = std::make_unique<MemSystem>(params_.mem, params_.numCpus,
                                       &root_);
    traces_.resize(params_.numCpus);
    sources_.resize(params_.numCpus);
    for (unsigned i = 0; i < params_.numCpus; ++i) {
        cores_.push_back(std::make_unique<Core>(params_.core, i,
                                                *mem_, &root_));
    }

    // Arm whatever fault the process-wide plan asks for (see
    // check/fault_inject.hh; TraceCorrupt acts in trace_io instead).
    const check::FaultPlan &fault = check::activeFaultPlan();
    if (fault.active(check::FaultKind::CommitStall)) {
        for (auto &core : cores_)
            core->injectCommitStall(fault.at);
    } else if (fault.active(check::FaultKind::LostGrant)) {
        mem_->bus().injectLostGrant(fault.at);
    } else if (fault.active(check::FaultKind::LostInvalidate)) {
        mem_->coherence().injectLostInvalidate(fault.at);
    }
}

System::~System()
{
    if (check::crashSystem() == this)
        check::setCrashSystem(nullptr);
}

void
System::attachTrace(CpuId cpu, std::shared_ptr<const InstrTrace> trace)
{
    if (cpu >= cores_.size())
        fatal("attachTrace: cpu %u out of range", cpu);
    if (!trace)
        fatal("attachTrace: cpu %u given a null trace", cpu);
    traces_[cpu] = std::move(trace);
    sources_[cpu] =
        std::make_unique<VectorTraceSource>(*traces_[cpu]);
    cores_[cpu]->setTrace(sources_[cpu].get());
}

SimResult
System::run()
{
    for (unsigned i = 0; i < cores_.size(); ++i) {
        if (!sources_[i])
            fatal("cpu %u has no trace attached", i);
    }

    SimResult res;
    const Cycle start = cont_.nextCycle;
    if (cont_.warmupCommitted.size() != cores_.size())
        cont_.warmupCommitted.assign(cores_.size(), 0);
    bool warm_done = cont_.warmDone || params_.warmupInstrs == 0;
    res.warmupEndCycle = cont_.warmupEndCycle;

    // Self-check machinery: crash reports read live state through the
    // registration; the watchdog distinguishes long-latency stalls
    // from deadlock via the earliest in-flight fill; the auditor
    // cross-checks structural invariants.
    check::setCrashSystem(this);
    check::InvariantAuditor auditor(*this);
    std::unique_ptr<check::Watchdog> watchdog;
    if (params_.watchdogCycles != 0) {
        watchdog =
            std::make_unique<check::Watchdog>(params_.watchdogCycles);
        watchdog->setEventProbe([this](Cycle now) {
            Cycle earliest = kCycleNever;
            for (CpuId c = 0; c < mem_->numCpus(); ++c) {
                earliest = std::min(
                    {earliest, mem_->l1i(c).earliestPendingFill(now),
                     mem_->l1d(c).earliestPendingFill(now),
                     mem_->l2(c).earliestPendingFill(now)});
            }
            return earliest;
        });
    }

    // Assemble the cycle kernel: cores tick every cycle; everything
    // else is a probe with a period, registered in the order the
    // checks must run (watchdog and auditor see the machine before
    // the warm-up reset; the sampler reads deltas after it).
    kernel_ = std::make_unique<CycleKernel>();
    hitCycleCap_ = false;
    kernel_->setSkipAhead(params_.skipAhead);
    kernel_->setFlatDispatch(params_.flatDispatch);
    kernel_->setMemoQuiescence(params_.memoQuiescence);
    // The lazily-timed memory system is never ticked, but in-flight
    // fills and busy shared resources still bound how far the kernel
    // may skip (their completion cycles are where stall
    // classifications and watchdog deferrals can change).
    kernel_->attachSkipBound([this](Cycle now) {
        return mem_->earliestPendingCompletion(now);
    });
    if (profiler_)
        kernel_->attachProfiler(profiler_);
    for (auto &core : cores_)
        kernel_->attachTyped(core.get());
    if (watchdog) {
        // Polled, not periodic: a period-1 probe would pin the
        // skip-ahead target to the very next cycle. The horizon keeps
        // the would-be firing cycle visited, so the watchdog fires on
        // exactly the cycle the per-cycle loop would fire on.
        kernel_->attachPolledProbe([&](Cycle cycle) {
            if (watchdog->tick(cycle, totalRawCommitted())) {
                if (params_.watchdogEscalate &&
                    !params_.emergencyCheckpointPath.empty()) {
                    warn("watchdog fired; writing emergency "
                         "checkpoint to '%s'",
                         params_.emergencyCheckpointPath.c_str());
                    const bool prev = throwOnErrorEnabled();
                    setThrowOnError(true);
                    try {
                        kernel_->flushElides();
                        cont_.nextCycle = cycle + 1;
                        ckpt::writeSystemCheckpoint(
                            *this, params_.emergencyCheckpointPath);
                    } catch (const std::exception &e) {
                        warn("emergency checkpoint failed: %s",
                             e.what());
                    }
                    setThrowOnError(prev);
                }
                panic("%s", watchdog->diagnosis().c_str());
            }
            return true;
        }, [&wd = *watchdog]() { return wd.deadline(); });
    }
    if (params_.checkLevel == check::CheckLevel::PerCycle) {
        kernel_->attachProbe(start, 1, [&](Cycle cycle) {
            auditor.checkCycle(cycle);
            return true;
        });
    }
    if (!warm_done) {
        // Polled with no horizon: the warm-up decision depends only
        // on committed counts, which change exclusively at visited
        // cycles, so the probe need not bound the skip.
        kernel_->attachPolledProbe([&](Cycle cycle) {
            for (auto &core : cores_) {
                if (core->committed() < params_.warmupInstrs)
                    return true; // not warm yet; probe again.
            }
            for (std::size_t i = 0; i < cores_.size(); ++i)
                cont_.warmupCommitted[i] = cores_[i]->committed();
            // Polled probes run with idle-tick replays still
            // deferred; settle them on the side of the boundary they
            // belong to before the measurement window opens.
            kernel_->flushElides();
            root_.resetAll();
            res.warmupEndCycle = cycle;
            cont_.warmDone = true;
            cont_.warmupEndCycle = cycle;
            warm_done = true;
            return false; // measurement window open; detach.
        });
    }
    if (sampler_ && params_.samplePeriod != 0) {
        kernel_->attachProbe(
            phaseStart(params_.samplePeriod, start),
            params_.samplePeriod, [this](Cycle cycle) {
                sampler_->tick(cycle, totalCommitted());
                return true;
            });
    }
    if (heartbeat_ && params_.heartbeatPeriod != 0) {
        kernel_->attachProbe(
            phaseStart(params_.heartbeatPeriod, start),
            params_.heartbeatPeriod, [this](Cycle cycle) {
                heartbeat_->beat(cycle, totalCommitted());
                return true;
            });
    }
    // Injected process death (--inject-fault=kill-point:<cycle>):
    // vanish without flushing anything, the way an OOM kill would.
    // Registered before the checkpoint probe so a checkpoint at the
    // same cycle never gets written first.
    const check::FaultPlan &fault = check::activeFaultPlan();
    if (fault.active(check::FaultKind::KillPoint) &&
        fault.at >= start) {
        kernel_->attachProbe(fault.at, 1, [](Cycle) -> bool {
            std::_Exit(check::kInjectedFaultExitCode);
        });
    }
    // Checkpoint probe goes last: every other probe of the trigger
    // cycle (warm-up reset, sampler) has fired by the time the
    // snapshot is cut, so the restored run replays none of them.
    if (!params_.checkpoint.path.empty() &&
        params_.checkpoint.atCycle >= start) {
        kernel_->attachProbe(
            params_.checkpoint.atCycle, 1, [&](Cycle cycle) {
                cont_.nextCycle = cycle + 1;
                ckpt::writeSystemCheckpoint(*this,
                                            params_.checkpoint.path);
                inform("checkpoint written to '%s' at cycle %llu",
                       params_.checkpoint.path.c_str(),
                       static_cast<unsigned long long>(cycle));
                if (params_.checkpoint.stopAfter)
                    kernel_->requestStop();
                return false;
            });
    }

    const CycleKernel::Outcome out =
        kernel_->run(params_.maxCycles, start);
    const Cycle cycle = out.cycle;
    currentCycle_ = cycle;
    res.elidedCycles = kernel_->elidedCycles();
    kernel_.reset();

    switch (out.stop) {
      case CycleKernel::Stop::Drained:
        break;
      case CycleKernel::Stop::Requested:
        res.stoppedAtCheckpoint = true;
        break;
      case CycleKernel::Stop::Interrupted:
        warn("stop requested (signal %d); ending the run at cycle "
             "%llu", check::stopSignal(),
             static_cast<unsigned long long>(cycle));
        res.interrupted = true;
        break;
      case CycleKernel::Stop::CycleCap:
        warn("simulation hit the %llu-cycle cap; likely a model "
             "deadlock",
             static_cast<unsigned long long>(params_.maxCycles));
        res.hitCycleCap = true;
        hitCycleCap_ = true;
        break;
    }

    if (params_.checkLevel != check::CheckLevel::Off) {
        if (res.hitCycleCap || res.interrupted ||
            res.stoppedAtCheckpoint) {
            // The machine did not drain; audit only what must hold at
            // any cycle boundary.
            auditor.checkCycle(cycle);
        } else {
            auditor.checkEndOfRun(cycle);
        }
    }

    if (!warm_done) {
        warn("warm-up threshold %llu never reached; measuring the "
             "whole run",
             static_cast<unsigned long long>(params_.warmupInstrs));
    }

    if (sampler_)
        sampler_->finish(cycle, totalCommitted());

    for (std::size_t i = 0; i < cores_.size(); ++i) {
        Core &core = *cores_[i];
        CoreResult cr;
        cr.measured = core.committed(); // stat: reset at warm-up end.
        cr.committed = cont_.warmupCommitted[i] + cr.measured;
        cr.lastCommitCycle = core.lastCommitCycle();
        const Cycle window = cr.lastCommitCycle > res.warmupEndCycle
            ? cr.lastCommitCycle - res.warmupEndCycle
            : 0;
        cr.ipc = window
            ? static_cast<double>(cr.measured) /
              static_cast<double>(window)
            : 0.0;
        res.instructions += cr.committed;
        res.measured += cr.measured;
        res.cycles = std::max(res.cycles,
                              cr.lastCommitCycle > res.warmupEndCycle
                                  ? cr.lastCommitCycle -
                                        res.warmupEndCycle
                                  : 0);
        res.cores.push_back(cr);
    }
    res.ipc = res.cycles
        ? static_cast<double>(res.measured) /
          static_cast<double>(res.cycles)
        : 0.0;
    return res;
}

std::uint64_t
System::totalCommitted() const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_)
        total += core->committed();
    return total;
}

std::uint64_t
System::totalRawCommitted() const
{
    // The watchdog must not mistake the warm-up stats reset for a
    // hundred-thousand-cycle commit drought, so it watches the raw
    // counters, which are never cleared.
    std::uint64_t total = 0;
    for (const auto &core : cores_)
        total += core->rawCommitted();
    return total;
}

std::string
System::statsDump() const
{
    std::string out;
    root_.dump(out);
    return out;
}

} // namespace s64v
